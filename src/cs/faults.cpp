#include "cs/faults.hpp"

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "common/check.hpp"

namespace flexcs::cs {
namespace {

template <typename T>
struct IsMeasurementFault : std::false_type {};
template <>
struct IsMeasurementFault<AdcSaturationFault> : std::true_type {};
template <>
struct IsMeasurementFault<DroppedMeasurementFault> : std::true_type {};

// Derives a per-frame stream from a fault seed so transient kinds re-draw
// every frame while staying reproducible. SplitMix64-style mixing keeps
// nearby frame indices decorrelated.
Rng frame_rng(std::uint64_t seed, std::size_t frame_index) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL *
                               (static_cast<std::uint64_t>(frame_index) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return Rng(z ^ (z >> 31));
}

double extreme_value(DefectPolarity polarity, Rng& rng) {
  switch (polarity) {
    case DefectPolarity::kStuckLow: return 0.0;
    case DefectPolarity::kStuckHigh: return 1.0;
    case DefectPolarity::kRandom: return rng.bernoulli(0.5) ? 1.0 : 0.0;
  }
  return 0.0;
}

void check_frame_mask(const la::Matrix& frame, const std::vector<bool>& mask) {
  FLEXCS_CHECK(!frame.empty(), "fault applied to an empty frame");
  FLEXCS_CHECK(mask.size() == frame.size(), "fault mask size mismatch");
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStuckPixel: return "stuck-pixel";
    case FaultKind::kLine: return "line";
    case FaultKind::kFlicker: return "flicker";
    case FaultKind::kReadoutNoise: return "readout-noise";
    case FaultKind::kGainDrift: return "gain-drift";
    case FaultKind::kAdcSaturation: return "adc-saturation";
    case FaultKind::kDroppedMeasurements: return "dropped-measurements";
  }
  return "unknown";
}

void StuckPixelFault::apply(la::Matrix& frame, std::size_t /*frame_index*/,
                            std::vector<bool>& mask) const {
  check_frame_mask(frame, mask);
  FLEXCS_CHECK(rate >= 0.0 && rate <= 1.0, "stuck-pixel rate must be in [0,1]");
  // Persistent: same stream for every frame, so locations and stuck values
  // never move.
  Rng rng(seed);
  const std::vector<bool> defect =
      random_defect_mask(frame.rows(), frame.cols(), rate, rng);
  for (std::size_t i = 0; i < defect.size(); ++i) {
    if (!defect[i]) continue;
    frame.data()[i] = extreme_value(polarity, rng);
    mask[i] = true;
  }
}

void LineFault::apply(la::Matrix& frame, std::size_t frame_index,
                      std::vector<bool>& mask) const {
  check_frame_mask(frame, mask);
  const bool row = orientation == LineOrientation::kRow;
  FLEXCS_CHECK(line < (row ? frame.rows() : frame.cols()),
               "line fault index out of range");
  Rng rng = frame_rng(seed, mode == LineFailureMode::kOpen ? frame_index : 0);
  const std::size_t count = row ? frame.cols() : frame.rows();
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t r = row ? line : k;
    const std::size_t c = row ? k : line;
    switch (mode) {
      case LineFailureMode::kStuckLow: frame(r, c) = 0.0; break;
      case LineFailureMode::kStuckHigh: frame(r, c) = 1.0; break;
      case LineFailureMode::kOpen: frame(r, c) = rng.uniform(); break;
    }
    mask[r * frame.cols() + c] = true;
  }
}

void FlickerFault::apply(la::Matrix& frame, std::size_t frame_index,
                         std::vector<bool>& mask) const {
  check_frame_mask(frame, mask);
  FLEXCS_CHECK(rate >= 0.0 && rate <= 1.0, "flicker rate must be in [0,1]");
  Rng rng = frame_rng(seed, frame_index);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    if (!rng.bernoulli(rate)) continue;
    frame.data()[i] = extreme_value(polarity, rng);
    mask[i] = true;
  }
}

void ReadoutNoiseFault::apply(la::Matrix& frame, std::size_t frame_index,
                              std::vector<bool>& mask) const {
  check_frame_mask(frame, mask);
  FLEXCS_CHECK(sigma >= 0.0, "readout noise sigma must be non-negative");
  Rng rng = frame_rng(seed, frame_index);
  for (std::size_t i = 0; i < frame.size(); ++i)
    frame.data()[i] += rng.normal(0.0, sigma);
}

void GainDriftFault::apply(la::Matrix& frame, std::size_t frame_index,
                           std::vector<bool>& mask) const {
  check_frame_mask(frame, mask);
  FLEXCS_CHECK(mask_threshold >= 0.0, "gain-drift mask threshold < 0");
  // Per-pixel drift rates are fixed device properties: drawn from the seed
  // alone, then scaled by the frame index.
  Rng rng(seed);
  const double t = static_cast<double>(frame_index);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    const double z = rng.normal();
    const double gain = 1.0 + drift_per_frame * t * (1.0 + pixel_spread * z);
    frame.data()[i] *= gain;
    if (std::abs(gain - 1.0) > mask_threshold) mask[i] = true;
  }
}

void AdcSaturationFault::apply(la::Vector& y, std::size_t /*frame_index*/,
                               std::vector<bool>& saturated) const {
  FLEXCS_CHECK(lo < hi, "ADC saturation range is empty");
  FLEXCS_CHECK(saturated.size() == y.size(), "saturation mask size mismatch");
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double clamped = std::clamp(y[i], lo, hi);
    if (clamped != y[i]) {  // flexcs-lint: allow(float-equality)
      y[i] = clamped;
      saturated[i] = true;
    }
  }
}

void DroppedMeasurementFault::apply(const la::Vector& y,
                                    std::size_t frame_index,
                                    std::vector<bool>& dropped) const {
  FLEXCS_CHECK(rate >= 0.0 && rate <= 1.0, "drop rate must be in [0,1]");
  FLEXCS_CHECK(dropped.size() == y.size(), "drop mask size mismatch");
  Rng rng = frame_rng(seed, frame_index);
  const std::size_t count = static_cast<std::size_t>(
      rate * static_cast<double>(y.size()) + 0.5);
  for (std::size_t idx : rng.sample_without_replacement(y.size(), count))
    dropped[idx] = true;
}

FaultKind fault_kind(const Fault& fault) {
  return std::visit([](const auto& f) { return f.kind; }, fault);
}

bool fault_is_persistent(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStuckPixel:
    case FaultKind::kLine:
    case FaultKind::kGainDrift:
      return true;
    default:
      return false;
  }
}

bool fault_is_measurement_level(FaultKind kind) {
  return kind == FaultKind::kAdcSaturation ||
         kind == FaultKind::kDroppedMeasurements;
}

FaultScenario::FaultScenario(std::vector<Fault> faults)
    : faults_(std::move(faults)) {}

void FaultScenario::add(Fault fault) { faults_.push_back(std::move(fault)); }

bool FaultScenario::has_frame_faults() const {
  for (const auto& f : faults_)
    if (!fault_is_measurement_level(fault_kind(f))) return true;
  return false;
}

bool FaultScenario::has_measurement_faults() const {
  for (const auto& f : faults_)
    if (fault_is_measurement_level(fault_kind(f))) return true;
  return false;
}

FaultedFrame FaultScenario::corrupt_frame(const la::Matrix& frame,
                                          std::size_t frame_index) const {
  FLEXCS_CHECK(!frame.empty(), "corrupt_frame on an empty frame");
  FLEXCS_CHECK(la::all_finite(frame), "corrupt_frame: non-finite input pixel");
  FaultedFrame out;
  out.values = frame;
  out.mask.assign(frame.size(), false);
  out.persistent.assign(frame.size(), false);

  std::vector<bool> scratch(frame.size(), false);
  for (const auto& fault : faults_) {
    const FaultKind kind = fault_kind(fault);
    if (fault_is_measurement_level(kind)) continue;
    std::fill(scratch.begin(), scratch.end(), false);
    std::visit(
        [&](const auto& f) {
          if constexpr (!IsMeasurementFault<std::decay_t<decltype(f)>>::value) {
            f.apply(out.values, frame_index, scratch);
          }
        },
        fault);
    for (std::size_t i = 0; i < scratch.size(); ++i) {
      if (!scratch[i]) continue;
      out.mask[i] = true;
      if (fault_is_persistent(kind)) out.persistent[i] = true;
    }
  }
  for (std::size_t i = 0; i < out.mask.size(); ++i)
    if (out.mask[i]) ++out.corrupted_count;
  return out;
}

FaultedMeasurements FaultScenario::corrupt_measurements(
    const la::Vector& y, const SamplingPattern& pattern,
    std::size_t frame_index) const {
  FLEXCS_CHECK(y.size() == pattern.m(),
               "corrupt_measurements: y/pattern size mismatch");
  FLEXCS_CHECK(la::all_finite(y), "corrupt_measurements: non-finite entry");

  la::Vector values = y;
  std::vector<bool> saturated(y.size(), false);
  std::vector<bool> dropped(y.size(), false);
  for (const auto& fault : faults_) {
    if (const auto* sat = std::get_if<AdcSaturationFault>(&fault)) {
      sat->apply(values, frame_index, saturated);
    } else if (const auto* drop = std::get_if<DroppedMeasurementFault>(&fault)) {
      drop->apply(values, frame_index, dropped);
    }
  }

  FaultedMeasurements out;
  out.pattern.rows = pattern.rows;
  out.pattern.cols = pattern.cols;
  std::vector<double> kept;
  kept.reserve(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (saturated[i]) ++out.saturated_count;
    if (dropped[i]) {
      out.dropped.push_back(i);
      continue;
    }
    out.pattern.indices.push_back(pattern.indices[i]);
    kept.push_back(values[i]);
  }
  out.values = la::Vector(std::move(kept));
  return out;
}

}  // namespace flexcs::cs
