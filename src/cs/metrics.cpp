#include "cs/metrics.hpp"

#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace flexcs::cs {

double rmse(const la::Matrix& a, const la::Matrix& b) {
  FLEXCS_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
               "rmse shape mismatch");
  FLEXCS_CHECK(!a.empty(), "rmse of empty frames");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a.data()[i] - b.data()[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

double rmse(const la::Vector& a, const la::Vector& b) {
  FLEXCS_CHECK(a.size() == b.size() && !a.empty(), "rmse size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

double psnr(const la::Matrix& reference, const la::Matrix& test) {
  const double e = rmse(reference, test);
  if (e == 0.0) return std::numeric_limits<double>::infinity();
  return 20.0 * std::log10(1.0 / e);
}

double max_error(const la::Matrix& a, const la::Matrix& b) {
  return la::max_abs_diff(a, b);
}

double mae(const la::Matrix& a, const la::Matrix& b) {
  FLEXCS_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
               "mae shape mismatch");
  FLEXCS_CHECK(!a.empty(), "mae of empty frames");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    s += std::fabs(a.data()[i] - b.data()[i]);
  return s / static_cast<double>(a.size());
}

}  // namespace flexcs::cs
