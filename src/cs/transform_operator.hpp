// Matrix-free measurement operator A = Φ_M · Ψ (Eq. 8): the subsampled
// synthesis transform applied through fast O(N log N) kernels instead of a
// dense M x N matrix.
//
//   apply(x)         = gather(synthesize(grid(x)), pattern indices)
//   apply_adjoint(y) = flatten(analyze(scatter(y, pattern indices)))
//
// The adjoint identity holds exactly because Φ_Mᵀ is scatter and Ψᵀ is the
// analysis transform of an orthonormal basis. The per-apply kernels are the
// Makhoul FFT-based DCT plans (dsp::Dct1dPlan — O(N log N) per 1-D pass for
// pow2 lengths, cached-factor matvec otherwise) and the in-place lifting
// Haar (dsp::haar2d_inplace), running on raw contiguous buffers with no
// Matrix::from_flat round-trips: a 256×256 apply is ~1 ms of table-driven
// butterflies where the dense Ψ (~34 GB) cannot be built at all.
//
// Every apply is metered (count + wall time, relaxed atomics) so callers can
// account per-apply cost without external profilers: see apply_stats().
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "cs/sampling.hpp"
#include "dsp/basis.hpp"
#include "dsp/fft.hpp"
#include "la/operator.hpp"

namespace flexcs::cs {

class SubsampledTransformOperator final : public la::LinearOperator {
 public:
  /// Pattern indices must be strictly increasing row-major pixel indices
  /// inside the rows x cols grid (same contract as apply_pattern).
  SubsampledTransformOperator(dsp::BasisKind basis, SamplingPattern pattern);

  std::size_t rows() const override { return pattern_.m(); }
  std::size_t cols() const override { return pattern_.n(); }
  la::Vector apply(const la::Vector& x) const override;
  la::Vector apply_adjoint(const la::Vector& y) const override;
  /// Batch-major applies: the whole batch runs back-to-back through one
  /// thread-local workspace (plans, FFT lanes, grids stay hot), so the
  /// per-frame setup cost is paid once per batch instead of once per frame.
  std::vector<la::Vector> apply_batch(
      const std::vector<la::Vector>& xs) const override;
  std::vector<la::Vector> apply_adjoint_batch(
      const std::vector<la::Vector>& ys) const override;
  /// sigma_max(Φ_M Ψ) <= sigma_max(Ψ) = 1: row selection of an orthonormal
  /// basis never expands norms. Exact (not just an upper bound) whenever at
  /// least one pixel is sampled per Ψ's row space — always true here.
  double norm_upper_bound() const override { return 1.0; }

  dsp::BasisKind basis() const { return basis_; }
  const SamplingPattern& pattern() const { return pattern_; }

  /// Bytes of cached transform state (DCT plan tables; Haar needs none).
  /// The bench reports this as the implicit operator's memory footprint.
  std::size_t cached_state_bytes() const;

  /// Per-apply cost accounting: cumulative apply/adjoint counts and wall
  /// time since construction. Counters are relaxed atomics — cheap enough
  /// to stay on in production, coherent snapshots under concurrent decode.
  struct ApplyStats {
    std::uint64_t applies = 0;
    std::uint64_t adjoints = 0;
    double apply_seconds = 0.0;
    double adjoint_seconds = 0.0;
  };
  ApplyStats apply_stats() const;

 private:
  // Unchecked single-frame kernels (shape validated by the public wrappers);
  // `ws` carries the DCT workspace and the Haar scratch.
  struct Scratch;
  static Scratch& local_scratch();
  void apply_into(const double* x, double* y, Scratch& ws) const;
  void adjoint_into(const double* y, double* x, Scratch& ws) const;

  dsp::BasisKind basis_;
  SamplingPattern pattern_;
  // Fast 1-D DCT plans (DCT basis only): row_plan_ spans cols, col_plan_
  // spans rows. Haar runs the in-place lifting kernels with levels_.
  std::optional<dsp::Dct1dPlan> row_plan_;
  std::optional<dsp::Dct1dPlan> col_plan_;
  std::size_t haar_levels_ = 0;

  mutable std::atomic<std::uint64_t> apply_count_{0};
  mutable std::atomic<std::uint64_t> adjoint_count_{0};
  mutable std::atomic<std::uint64_t> apply_ns_{0};
  mutable std::atomic<std::uint64_t> adjoint_ns_{0};
};

}  // namespace flexcs::cs
