// Matrix-free measurement operator A = Φ_M · Ψ (Eq. 8): the subsampled
// synthesis transform applied through the fast 2-D transform instead of a
// dense M x N matrix.
//
//   apply(x)         = gather(synthesize(grid(x)), pattern indices)
//   apply_adjoint(y) = flatten(analyze(scatter(y, pattern indices)))
//
// The adjoint identity holds exactly because Φ_Mᵀ is scatter and Ψᵀ is the
// analysis transform of an orthonormal basis. Peak state is O(N) for the
// working grids plus the two cached 1-D DCT matrices (rows² + cols²) — a
// 128×128 frame costs ~260 KB against the ~2 GB dense Ψ, and 256×256 fits
// where the dense basis (~34 GB) cannot be built at all.
#pragma once

#include "cs/sampling.hpp"
#include "dsp/basis.hpp"
#include "la/operator.hpp"

namespace flexcs::cs {

class SubsampledTransformOperator final : public la::LinearOperator {
 public:
  /// Pattern indices must be strictly increasing row-major pixel indices
  /// inside the rows x cols grid (same contract as apply_pattern).
  SubsampledTransformOperator(dsp::BasisKind basis, SamplingPattern pattern);

  std::size_t rows() const override { return pattern_.m(); }
  std::size_t cols() const override { return pattern_.n(); }
  la::Vector apply(const la::Vector& x) const override;
  la::Vector apply_adjoint(const la::Vector& y) const override;
  /// sigma_max(Φ_M Ψ) <= sigma_max(Ψ) = 1: row selection of an orthonormal
  /// basis never expands norms. Exact (not just an upper bound) whenever at
  /// least one pixel is sampled per Ψ's row space — always true here.
  double norm_upper_bound() const override { return 1.0; }

  dsp::BasisKind basis() const { return basis_; }
  const SamplingPattern& pattern() const { return pattern_; }

 private:
  dsp::BasisKind basis_;
  SamplingPattern pattern_;
  // Cached 1-D DCT matrices (DCT basis only): dsp::dct2d/idct2d rebuild them
  // per call, which would dominate the per-iteration cost inside a solver.
  la::Matrix dr_;
  la::Matrix dc_;
};

}  // namespace flexcs::cs
