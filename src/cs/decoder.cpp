#include "cs/decoder.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "dsp/wavelet.hpp"
#include "solvers/admm.hpp"

namespace flexcs::cs {
namespace {

// Cached measurement operators per decoder. Two covers the common
// plain-decode + trimmed-decode pair; four also keeps a fresh-pattern retry
// and a batch window resident without letting trimmed one-off patterns
// evict everything.
constexpr std::size_t kOperatorCacheCapacity = 4;

}  // namespace

Decoder::Decoder(std::size_t rows, std::size_t cols, DecoderOptions opts,
                 std::shared_ptr<const solvers::SparseSolver> solver)
    : rows_(rows),
      cols_(cols),
      opts_(opts),
      solver_(std::move(solver)),
      psi_(opts.implicit_psi
               ? la::Matrix()
               : dsp::synthesis_matrix(opts.basis, rows, cols)) {
  FLEXCS_CHECK(rows_ > 0 && cols_ > 0, "decoder over empty array");
  // Implicit mode skips the Ψ build, so surface geometry constraints (Haar
  // needs even dims) at construction, exactly where the dense build would
  // have thrown — checked structurally, no probe transform or scratch grid.
  if (opts_.implicit_psi && opts_.basis == dsp::BasisKind::kHaar2D) {
    FLEXCS_CHECK(dsp::max_haar_levels(rows_) >= 1 &&
                     dsp::max_haar_levels(cols_) >= 1,
                 "decoder: Haar basis requires even dimensions");
  }
  if (!solver_) solver_ = std::make_shared<solvers::AdmmLassoSolver>();
}

const la::Matrix& Decoder::psi() const {
  FLEXCS_CHECK(!opts_.implicit_psi,
               "decoder: psi() unavailable in implicit_psi mode");
  return psi_;
}

Decoder::CachedOperator Decoder::entry_for(
    const SamplingPattern& pattern) const {
  {
    common::MutexLock lock(cache_mu_);
    for (std::size_t i = 0; i < operator_cache_.size(); ++i) {
      if (operator_cache_[i].indices != pattern.indices) continue;
      // MRU: rotate the hit to the front so hot patterns stay resident.
      std::rotate(operator_cache_.begin(), operator_cache_.begin() + i,
                  operator_cache_.begin() + i + 1);
      ++cache_stats_.hits;
      return operator_cache_.front();
    }
    ++cache_stats_.misses;
  }

  // Build outside the lock: psi_ is immutable after construction, so a
  // concurrent duplicate build is wasted work, never a race.
  CachedOperator entry;
  entry.indices = pattern.indices;
  if (opts_.implicit_psi) {
    entry.op = std::make_shared<const SubsampledTransformOperator>(opts_.basis,
                                                                   pattern);
  } else {
    entry.a =
        std::make_shared<const la::Matrix>(psi_.select_rows(pattern.indices));
    entry.dense_view = std::make_shared<const la::DenseOperator>(entry.a);
  }

  common::MutexLock lock(cache_mu_);
  for (std::size_t i = 0; i < operator_cache_.size(); ++i) {
    if (operator_cache_[i].indices != pattern.indices) continue;
    std::rotate(operator_cache_.begin(), operator_cache_.begin() + i,
                operator_cache_.begin() + i + 1);
    return operator_cache_.front();  // raced build won; keep its sigma
  }
  operator_cache_.insert(operator_cache_.begin(), entry);
  if (operator_cache_.size() > kOperatorCacheCapacity) {
    operator_cache_.pop_back();
    ++cache_stats_.evictions;
  }
  return entry;
}

Decoder::OperatorCacheStats Decoder::cache_stats() const {
  common::MutexLock lock(cache_mu_);
  return cache_stats_;
}

std::shared_ptr<const la::Matrix> Decoder::measurement_operator(
    const SamplingPattern& pattern) const {
  FLEXCS_CHECK(pattern.rows == rows_ && pattern.cols == cols_,
               "decoder: pattern shape mismatch");
  FLEXCS_CHECK(!opts_.implicit_psi,
               "decoder: measurement_operator unavailable in implicit_psi "
               "mode (use implicit_operator)");
  return entry_for(pattern).a;
}

std::shared_ptr<const SubsampledTransformOperator> Decoder::implicit_operator(
    const SamplingPattern& pattern) const {
  FLEXCS_CHECK(pattern.rows == rows_ && pattern.cols == cols_,
               "decoder: pattern shape mismatch");
  FLEXCS_CHECK(opts_.implicit_psi,
               "decoder: implicit_operator requires implicit_psi mode");
  return entry_for(pattern).op;
}

la::Matrix Decoder::measurement_matrix(const SamplingPattern& pattern) const {
  return *measurement_operator(pattern);
}

double Decoder::operator_norm(const SamplingPattern& pattern) const {
  FLEXCS_CHECK(pattern.rows == rows_ && pattern.cols == cols_,
               "decoder: pattern shape mismatch");
  const CachedOperator entry = entry_for(pattern);
  if (entry.sigma >= 0.0) return entry.sigma;
  // Computed without the lock (the power iteration is the expensive part); a
  // concurrent duplicate lands on the identical deterministic value. Dense
  // mode keeps la::spectral_norm bit-for-bit; implicit mode runs the same
  // iteration through the fast transform.
  const double sigma = entry.op != nullptr
                           ? la::operator_norm_estimate(*entry.op)
                           : la::spectral_norm(*entry.a);
  common::MutexLock lock(cache_mu_);
  for (CachedOperator& cached : operator_cache_) {
    if (cached.indices == pattern.indices) {
      cached.sigma = sigma;
      break;
    }
  }
  return sigma;
}

DecodeResult Decoder::decode(const SamplingPattern& pattern,
                             const la::Vector& measurements) const {
  return decode_with(pattern, measurements, *solver_, opts_);
}

void Decoder::check_decode_args(const SamplingPattern& pattern,
                                const la::Vector& measurements,
                                const DecoderOptions& opts) const {
  FLEXCS_CHECK(measurements.size() == pattern.m(),
               "decoder: measurement count mismatch");
  FLEXCS_CHECK(measurements.size() > 0, "decoder: no measurements");
  FLEXCS_CHECK(la::all_finite(measurements),
               "decoder: non-finite measurement (reject defective reads "
               "before decoding)");
  FLEXCS_CHECK(opts.basis == opts_.basis,
               "decode_with cannot change the basis (Ψ is cached)");
  FLEXCS_CHECK(pattern.rows == rows_ && pattern.cols == cols_,
               "decoder: pattern shape mismatch");
}

DecodeResult Decoder::finish_decode(const la::LinearOperator& a,
                                    const la::Vector& measurements,
                                    solvers::SolveResult sr,
                                    const DecoderOptions& opts) const {
  // Skip de-biasing on an interrupted solve: the caller's budget is spent,
  // and a least-squares re-fit of a partial support isn't worth paying for.
  // The operator overload refits matrix-free in implicit mode (no dense A
  // exists) and delegates to the matrix version otherwise.
  if (opts.debias && !sr.deadline_expired) {
    sr.x = solvers::debias_on_support(a, measurements, sr.x,
                                      opts.support_threshold);
  }

  DecodeResult out;
  out.solver_iterations = sr.iterations;
  out.converged = sr.converged;
  out.deadline_expired = sr.deadline_expired;
  out.residual_norm = sr.residual_norm;
  out.solve_seconds = sr.solve_seconds;

  // Synthesise the frame from the recovered coefficients (y = Ψ x, done via
  // the fast transform rather than the dense matrix).
  const la::Matrix coeff_grid = la::Matrix::from_flat(sr.x, rows_, cols_);
  out.coefficients = std::move(sr.x);
  out.frame = dsp::synthesize(opts.basis, coeff_grid);
  if (opts.clamp01) {
    for (std::size_t i = 0; i < out.frame.size(); ++i)
      out.frame.data()[i] = std::clamp(out.frame.data()[i], 0.0, 1.0);
  }
  return out;
}

DecodeResult Decoder::decode_with(const SamplingPattern& pattern,
                                  const la::Vector& measurements,
                                  const solvers::SparseSolver& solver,
                                  const DecoderOptions& opts) const {
  check_decode_args(pattern, measurements, opts);
  const CachedOperator entry = entry_for(pattern);
  const la::LinearOperator& a = entry.linop();

  DecoderOptions effective = opts;
  // Reuse a previously computed spectral norm of this exact operator: the
  // value is what the solver's own setup would produce, minus the cost. A
  // hint the caller already set wins (it knows something we don't).
  if (effective.solve.operator_norm_hint <= 0.0 && entry.sigma > 0.0)
    effective.solve.operator_norm_hint = entry.sigma;

  solvers::SolveResult sr = solver.solve(a, measurements, effective.solve);
  return finish_decode(a, measurements, std::move(sr), effective);
}

std::vector<DecodeResult> Decoder::decode_batch(
    const SamplingPattern& pattern,
    const std::vector<la::Vector>& measurements) const {
  return decode_batch_with(pattern, measurements, *solver_, opts_);
}

std::vector<DecodeResult> Decoder::decode_batch_with(
    const SamplingPattern& pattern,
    const std::vector<la::Vector>& measurements,
    const solvers::SparseSolver& solver, const DecoderOptions& opts) const {
  FLEXCS_CHECK(!measurements.empty(), "decoder: empty batch");
  for (const la::Vector& y : measurements) check_decode_args(pattern, y, opts);

  // Price the shared setup once: the operator build (cache) and its spectral
  // norm. Every per-frame solve below then starts at its main loop.
  const double sigma = operator_norm(pattern);
  DecoderOptions batch_opts = opts;
  if (batch_opts.solve.operator_norm_hint <= 0.0)
    batch_opts.solve.operator_norm_hint = sigma;

  const CachedOperator entry = entry_for(pattern);
  const la::LinearOperator& a = entry.linop();

  // One batch-major solve for the window. Solvers with a lockstep main loop
  // (FISTA/ISTA) amortise workspace and setup across frames; the rest fall
  // back to sequential solve_impl calls inside solve_batch. Either way the
  // per-frame results match one-by-one decode_with calls.
  std::vector<solvers::SolveResult> srs =
      solver.solve_batch(a, measurements, batch_opts.solve);

  std::vector<DecodeResult> out;
  out.reserve(measurements.size());
  for (std::size_t f = 0; f < measurements.size(); ++f)
    out.push_back(
        finish_decode(a, measurements[f], std::move(srs[f]), batch_opts));
  return out;
}

}  // namespace flexcs::cs
