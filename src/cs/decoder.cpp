#include "cs/decoder.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "solvers/admm.hpp"

namespace flexcs::cs {

Decoder::Decoder(std::size_t rows, std::size_t cols, DecoderOptions opts,
                 std::shared_ptr<const solvers::SparseSolver> solver)
    : rows_(rows),
      cols_(cols),
      opts_(opts),
      solver_(std::move(solver)),
      psi_(dsp::synthesis_matrix(opts.basis, rows, cols)) {
  FLEXCS_CHECK(rows_ > 0 && cols_ > 0, "decoder over empty array");
  if (!solver_) solver_ = std::make_shared<solvers::AdmmLassoSolver>();
}

la::Matrix Decoder::measurement_matrix(const SamplingPattern& pattern) const {
  FLEXCS_CHECK(pattern.rows == rows_ && pattern.cols == cols_,
               "decoder: pattern shape mismatch");
  return psi_.select_rows(pattern.indices);
}

DecodeResult Decoder::decode(const SamplingPattern& pattern,
                             const la::Vector& measurements) const {
  return decode_with(pattern, measurements, *solver_, opts_);
}

DecodeResult Decoder::decode_with(const SamplingPattern& pattern,
                                  const la::Vector& measurements,
                                  const solvers::SparseSolver& solver,
                                  const DecoderOptions& opts) const {
  FLEXCS_CHECK(measurements.size() == pattern.m(),
               "decoder: measurement count mismatch");
  FLEXCS_CHECK(measurements.size() > 0, "decoder: no measurements");
  FLEXCS_CHECK(la::all_finite(measurements),
               "decoder: non-finite measurement (reject defective reads "
               "before decoding)");
  FLEXCS_CHECK(opts.basis == opts_.basis,
               "decode_with cannot change the basis (Ψ is cached)");
  const la::Matrix a = measurement_matrix(pattern);

  solvers::SolveResult sr = solver.solve(a, measurements, opts.solve);
  // Skip de-biasing on an interrupted solve: the caller's budget is spent,
  // and a least-squares re-fit of a partial support isn't worth paying for.
  if (opts.debias && !sr.deadline_expired) {
    sr.x = solvers::debias_on_support(a, measurements, sr.x,
                                      opts.support_threshold);
  }

  DecodeResult out;
  out.coefficients = sr.x;
  out.solver_iterations = sr.iterations;
  out.converged = sr.converged;
  out.deadline_expired = sr.deadline_expired;
  out.residual_norm = sr.residual_norm;
  out.solve_seconds = sr.solve_seconds;

  // Synthesise the frame from the recovered coefficients (y = Ψ x, done via
  // the fast transform rather than the dense matrix).
  const la::Matrix coeff_grid = la::Matrix::from_flat(sr.x, rows_, cols_);
  out.frame = dsp::synthesize(opts.basis, coeff_grid);
  if (opts.clamp01) {
    for (std::size_t i = 0; i < out.frame.size(); ++i)
      out.frame.data()[i] = std::clamp(out.frame.data()[i], 0.0, 1.0);
  }
  return out;
}

}  // namespace flexcs::cs
