// The sampling matrix Φ_M of Eq. 8 and its hardware realisation (Fig. 4).
//
// Φ_M consists of M randomly chosen rows of the N x N identity, i.e. a
// subset of pixel indices. The active-matrix encoder realises it by scanning
// the array column by column (√N cycles for a square array): in the cycle
// for column c, the row driver asserts exactly the rows whose pixel (r, c)
// is sampled. This module represents the pattern, draws it (optionally
// avoiding known-defective pixels), and derives the per-cycle driver words.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "la/matrix.hpp"

namespace flexcs::cs {

/// An M-of-N pixel sampling pattern over a rows x cols array.
/// Indices are row-major pixel indices, strictly increasing.
struct SamplingPattern {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::size_t> indices;

  std::size_t n() const { return rows * cols; }
  std::size_t m() const { return indices.size(); }
  double fraction() const {
    return n() == 0 ? 0.0 : static_cast<double>(m()) / static_cast<double>(n());
  }
};

/// Draws floor(fraction * N) distinct pixels uniformly at random.
SamplingPattern random_pattern(std::size_t rows, std::size_t cols,
                               double fraction, Rng& rng);

/// Resolves a per-frame sampling-fraction override against a configured
/// fallback: 0 selects the fallback, anything else must lie in (0, 1].
/// This is the contract every adaptive-sampling caller (event-driven tile
/// readout, degrade policies) goes through, so a bad override is rejected
/// once here instead of deep inside pattern drawing.
double resolve_fraction(double request, double fallback);

/// Draws the pattern from the pixels NOT flagged in `exclude` (row-major
/// mask, size N). The requested count is floor(fraction * N) capped at the
/// number of available pixels — the paper's "sample good pixels only" mode.
SamplingPattern random_pattern_excluding(std::size_t rows, std::size_t cols,
                                         double fraction,
                                         const std::vector<bool>& exclude,
                                         Rng& rng);

/// Extracts the sampled entries of a vectorised frame: y_M = Φ_M · y.
la::Vector apply_pattern(const SamplingPattern& p, const la::Vector& y);

/// Materialises Φ_M as a dense M x N matrix (tests / LP decoding).
la::Matrix pattern_matrix(const SamplingPattern& p);

/// Per-cycle driver control of Fig. 4: scanning column `cycle`, the row
/// driver word has bit r set iff pixel (r, cycle) is sampled. The sensor
/// array is built from p-type TFTs, so the array is low-enabled: an
/// asserted select is driven to 0 V. `active_low` reflects that polarity.
struct ScanCycle {
  std::size_t column = 0;
  std::vector<bool> row_select;  // size rows; true = read this row
};

struct ScanSchedule {
  std::vector<ScanCycle> cycles;  // one per column, in scan order
  bool active_low = true;

  /// Total asserted row-selects across all cycles (equals the pattern's M).
  std::size_t total_reads() const;
};

/// Derives the column-by-column schedule for a pattern.
ScanSchedule make_scan_schedule(const SamplingPattern& p);

/// Rebuilds the pattern from a schedule (inverse of make_scan_schedule).
SamplingPattern pattern_from_schedule(const ScanSchedule& s, std::size_t rows,
                                      std::size_t cols);

}  // namespace flexcs::cs
