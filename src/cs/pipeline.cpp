#include "cs/pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "solvers/admm.hpp"

namespace flexcs::cs {

la::Matrix reconstruct_oracle(const CorruptedFrame& corrupted,
                              double fraction, const Encoder& encoder,
                              const Decoder& decoder, Rng& rng) {
  const SamplingPattern pattern = random_pattern_excluding(
      corrupted.values.rows(), corrupted.values.cols(), fraction,
      corrupted.mask, rng);
  const la::Vector y = encoder.encode(corrupted.values, pattern, rng);
  return decoder.decode(pattern, y).frame;
}

la::Matrix reconstruct_resample(const la::Matrix& corrupted_frame,
                                double fraction, const ResampleOptions& opts,
                                const Encoder& encoder, const Decoder& decoder,
                                Rng& rng) {
  FLEXCS_CHECK(opts.rounds >= 1, "resampling needs at least one round");
  const std::size_t n = corrupted_frame.size();
  std::vector<std::vector<double>> per_pixel(
      n, std::vector<double>());
  for (auto& v : per_pixel) v.reserve(static_cast<std::size_t>(opts.rounds));

  DecoderOptions plain_opts = decoder.options();
  plain_opts.solve = opts.solve;
  for (int round = 0; round < opts.rounds; ++round) {
    // The shared deadline bounds the whole resample call: once it fires no
    // further rounds start. The first round always runs so every pixel has
    // at least one vote (its decode returns immediately, flagged, if the
    // deadline was already spent on entry).
    if (round > 0 && opts.solve.should_stop()) break;
    const SamplingPattern pattern = random_pattern(
        corrupted_frame.rows(), corrupted_frame.cols(), fraction, rng);
    const la::Vector y = encoder.encode(corrupted_frame, pattern, rng);
    const la::Matrix rec =
        opts.trim
            ? decode_trimmed(decoder, pattern, y, 4.0, 0.2, opts.solve)
            : decoder.decode_with(pattern, y, decoder.solver(), plain_opts)
                  .frame;
    for (std::size_t i = 0; i < n; ++i)
      per_pixel[i].push_back(rec.data()[i]);
  }

  la::Matrix out(corrupted_frame.rows(), corrupted_frame.cols(), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    auto& vals = per_pixel[i];
    if (opts.aggregate == Aggregate::kMean) {
      double s = 0.0;
      for (double v : vals) s += v;
      out.data()[i] = s / static_cast<double>(vals.size());
    } else {
      const std::size_t mid = vals.size() / 2;
      std::nth_element(vals.begin(),
                       vals.begin() + static_cast<std::ptrdiff_t>(mid),
                       vals.end());
      double med = vals[mid];
      if (vals.size() % 2 == 0) {
        // Median of an even count: average the two central order statistics.
        const double lower =
            *std::max_element(vals.begin(),
                              vals.begin() + static_cast<std::ptrdiff_t>(mid));
        med = 0.5 * (med + lower);
      }
      out.data()[i] = med;
    }
  }
  return out;
}

std::vector<std::vector<bool>> rpca_outlier_masks(
    const std::vector<la::Matrix>& frames, const RpcaFilterOptions& opts) {
  FLEXCS_CHECK(!frames.empty(), "RPCA filter needs at least one frame");
  const std::size_t n = frames.front().size();

  // RPCA runs on each frame's rows x cols matrix: a smooth sensor frame is
  // approximately low rank as an image, so a stuck pixel is a sparse outlier
  // in S. (Stacking frames as columns would NOT work for persistent device
  // defects: a pixel stuck at the same value in every frame forms a constant
  // row, which is itself rank-1 and gets absorbed into L.)
  std::vector<std::vector<bool>> masks;
  masks.reserve(frames.size());
  for (const auto& f : frames) {
    FLEXCS_CHECK(f.size() == n, "frames must share a shape");
    masks.push_back(
        rpca::detect_outliers(f, opts.rpca, opts.outlier_rel_threshold));
  }
  return masks;
}

TrimmedDecodeResult decode_trimmed_ex(const Decoder& decoder,
                                      const SamplingPattern& p,
                                      const la::Vector& y,
                                      double mad_multiplier, double abs_floor,
                                      const solvers::SolveOptions& solve) {
  FLEXCS_CHECK(mad_multiplier > 0.0 && abs_floor >= 0.0,
               "invalid trim parameters");

  DecoderOptions final_opts = decoder.options();
  final_opts.solve = solve;

  // Screening pass with strong shrinkage and no de-biasing: a heavily
  // regularised lasso cannot interpolate corrupted measurements, so their
  // residuals stand far above the clean ones (a low-shrinkage or de-biased
  // decode would fit the outliers and hide them).
  solvers::AdmmOptions screen_solver_opts;
  screen_solver_opts.lambda = 0.2;
  const solvers::AdmmLassoSolver screen_solver(screen_solver_opts);
  DecoderOptions screen_opts = decoder.options();
  screen_opts.debias = false;
  screen_opts.clamp01 = false;
  screen_opts.solve = solve;
  const DecodeResult screen_dec =
      decoder.decode_with(p, y, screen_solver, screen_opts);
  if (screen_dec.deadline_expired) {
    // Budget spent during screening: a MAD trim over a truncated screen
    // would flag arbitrary measurements, so skip trimming entirely. The
    // final decode's own entry check returns immediately, flagged.
    TrimmedDecodeResult out;
    out.result = decoder.decode_with(p, y, decoder.solver(), final_opts);
    return out;
  }
  const la::Matrix& screen = screen_dec.frame;

  std::vector<double> absres(p.m());
  for (std::size_t i = 0; i < p.m(); ++i)
    absres[i] = std::fabs(y[i] - screen.data()[p.indices[i]]);
  std::vector<double> sorted = absres;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const double median = sorted[sorted.size() / 2];
  const double cutoff = std::max(abs_floor, mad_multiplier * median);

  SamplingPattern trimmed;
  trimmed.rows = p.rows;
  trimmed.cols = p.cols;
  std::vector<double> kept_vals;
  std::vector<std::size_t> trimmed_pixels;
  for (std::size_t i = 0; i < p.m(); ++i) {
    if (absres[i] > cutoff) {
      trimmed_pixels.push_back(p.indices[i]);
      continue;
    }
    trimmed.indices.push_back(p.indices[i]);
    kept_vals.push_back(y[i]);
  }

  TrimmedDecodeResult out;
  // Keep the production decode of the full data if trimming would remove
  // more than half of the measurements (screening gone wrong).
  if (kept_vals.size() < p.m() / 2) {
    out.result = decoder.decode_with(p, y, decoder.solver(), final_opts);
    return out;
  }
  out.result = decoder.decode_with(trimmed, la::Vector(kept_vals),
                                   decoder.solver(), final_opts);
  out.trimmed_count = trimmed_pixels.size();
  out.trimmed_pixels = std::move(trimmed_pixels);
  out.trim_applied = true;
  return out;
}

la::Matrix decode_trimmed(const Decoder& decoder, const SamplingPattern& p,
                          const la::Vector& y, double mad_multiplier,
                          double abs_floor, const solvers::SolveOptions& solve) {
  return decode_trimmed_ex(decoder, p, y, mad_multiplier, abs_floor, solve)
      .result.frame;
}

std::vector<la::Matrix> reconstruct_rpca_batch(
    const std::vector<la::Matrix>& corrupted_frames, double fraction,
    const RpcaFilterOptions& opts, const Encoder& encoder,
    const Decoder& decoder, Rng& rng) {
  const auto masks = rpca_outlier_masks(corrupted_frames, opts);
  std::vector<la::Matrix> out;
  out.reserve(corrupted_frames.size());
  for (std::size_t f = 0; f < corrupted_frames.size(); ++f) {
    const auto& frame = corrupted_frames[f];
    const SamplingPattern pattern = random_pattern_excluding(
        frame.rows(), frame.cols(), fraction, masks[f], rng);
    const la::Vector y = encoder.encode(frame, pattern, rng);
    out.push_back(decode_trimmed(decoder, pattern, y));
  }
  return out;
}

}  // namespace flexcs::cs
