// Sparse-error injection: the paper's model of device defects and transient
// errors (Sec. 4.2). Defective pixels read out "extreme results, either very
// high or almost zero currents", so a corrupted pixel is stuck at 0 or 1.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "la/matrix.hpp"

namespace flexcs::cs {

enum class DefectPolarity {
  kStuckLow,    // all defects read 0
  kStuckHigh,   // all defects read 1
  kRandom,      // each defect is 0 or 1 with probability 1/2 (paper default)
};

struct DefectOptions {
  double rate = 0.1;  // fraction of pixels affected (paper sweeps 0 - 0.20)
  DefectPolarity polarity = DefectPolarity::kRandom;
};

/// A corrupted frame plus the ground-truth defect locations.
struct CorruptedFrame {
  la::Matrix values;        // frame with defects applied
  std::vector<bool> mask;   // row-major; true = defective pixel
  std::size_t defect_count = 0;
};

/// Applies permanent defects to a frame.
CorruptedFrame inject_defects(const la::Matrix& frame,
                              const DefectOptions& opts, Rng& rng);

/// Applies the given defect mask (for persistent device defects that stay
/// fixed across frames): masked pixels are overwritten with their stuck
/// value (drawn per pixel from `polarity` using `rng`).
la::Matrix apply_defect_mask(const la::Matrix& frame,
                             const std::vector<bool>& mask,
                             DefectPolarity polarity, Rng& rng);

/// Draws a persistent defect mask over a rows x cols array.
std::vector<bool> random_defect_mask(std::size_t rows, std::size_t cols,
                                     double rate, Rng& rng);

}  // namespace flexcs::cs
