// Composable fault taxonomy for the readout chain, generalising the paper's
// stuck-pixel model (Sec. 4.2) to the failure modes a real active-matrix
// acquisition pipeline exhibits:
//
//   frame-level (corrupt pixels before sampling)
//     * stuck pixels            — persistent extreme reads (existing defect
//                                 model of cs/defects.hpp, kept compatible);
//     * stuck / open gate lines — a whole row or column corrupted, the
//                                 failure mode of a fe/shift_register driver
//                                 stage or a broken gate trace (Fig. 4);
//     * transient flicker       — per-frame random extreme reads that do not
//                                 persist (soft errors, Sec. 3.2 transients);
//     * additive readout noise  — dense Gaussian noise on every pixel;
//     * multiplicative drift    — per-pixel gain drifting over frames (bias
//                                 stress / temperature drift of the TFTs);
//
//   measurement-level (corrupt the encoded vector y after sampling)
//     * ADC saturation          — measurements clamped to the converter's
//                                 full-scale range;
//     * dropped measurements    — random measurement slots lost in transfer.
//
// Each fault is a tagged struct with a seeded `apply`: all randomness is
// derived from the fault's own seed (and the frame index for transient
// kinds), so a FaultScenario replays bit-identically regardless of caller
// RNG state. A FaultScenario composes several faults and retains
// ground-truth masks for evaluation.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "common/rng.hpp"
#include "cs/defects.hpp"
#include "cs/sampling.hpp"
#include "la/matrix.hpp"

namespace flexcs::cs {

enum class FaultKind {
  kStuckPixel,
  kLine,
  kFlicker,
  kReadoutNoise,
  kGainDrift,
  kAdcSaturation,
  kDroppedMeasurements,
};

/// Short stable identifier, e.g. "stuck-pixel" (used in bench JSON output).
const char* fault_kind_name(FaultKind kind);

enum class LineOrientation { kRow, kColumn };

enum class LineFailureMode {
  kStuckLow,   // driver stage stuck deasserted: line reads 0
  kStuckHigh,  // driver stage stuck asserted: line reads full scale
  kOpen,       // broken gate trace: line floats, reads noise per frame
};

// ---------------------------------------------------------------------------
// Frame-level faults. `apply` corrupts `frame` in place and sets the bits of
// the affected pixels in `mask` (row-major, same size as the frame). Dense
// faults that perturb every pixel a little (readout noise) do NOT set mask
// bits: the mask tracks sparse/extreme corruption that recovery should
// locate and exclude, not the noise floor.

/// Persistent stuck pixels — the paper's defect model. The defect locations
/// and stuck values depend only on `seed`, so they are identical for every
/// frame index (a fabrication defect does not move between frames).
struct StuckPixelFault {
  static constexpr FaultKind kind = FaultKind::kStuckPixel;
  double rate = 0.1;  // fraction of pixels stuck (paper sweeps 0 - 0.20)
  DefectPolarity polarity = DefectPolarity::kRandom;
  std::uint64_t seed = 1;

  void apply(la::Matrix& frame, std::size_t frame_index,
             std::vector<bool>& mask) const;
};

/// Persistent gate-line fault: one whole row (or column) corrupted, matching
/// a failed fe/shift_register driver stage (stage k gates line k). Stuck
/// modes read an extreme on every pixel of the line; an open line floats and
/// reads fresh uniform noise each frame.
struct LineFault {
  static constexpr FaultKind kind = FaultKind::kLine;
  LineOrientation orientation = LineOrientation::kRow;
  std::size_t line = 0;  // row index (kRow) or column index (kColumn)
  LineFailureMode mode = LineFailureMode::kStuckLow;
  std::uint64_t seed = 1;  // only consumed by kOpen floating reads

  void apply(la::Matrix& frame, std::size_t frame_index,
             std::vector<bool>& mask) const;
};

/// Transient flicker: each frame an independent random subset of pixels
/// reads an extreme value (soft errors / marginal TFTs). Locations are
/// re-drawn per frame from `seed` and the frame index.
struct FlickerFault {
  static constexpr FaultKind kind = FaultKind::kFlicker;
  double rate = 0.01;  // probability a pixel flickers in a given frame
  DefectPolarity polarity = DefectPolarity::kRandom;
  std::uint64_t seed = 1;

  void apply(la::Matrix& frame, std::size_t frame_index,
             std::vector<bool>& mask) const;
};

/// Dense additive Gaussian readout noise (amplifier/ADC noise beyond the
/// encoder's own eps model). Leaves the mask untouched by design.
struct ReadoutNoiseFault {
  static constexpr FaultKind kind = FaultKind::kReadoutNoise;
  double sigma = 0.01;
  std::uint64_t seed = 1;

  void apply(la::Matrix& frame, std::size_t frame_index,
             std::vector<bool>& mask) const;
};

/// Multiplicative gain drift: pixel i reads gain_i(t) * value with
/// gain_i(t) = 1 + drift_per_frame * t * (1 + pixel_spread * z_i), z_i a
/// fixed standard-normal per-pixel factor drawn from `seed`. Models TFT
/// bias-stress drift accumulating over the acquisition run. Pixels whose
/// gain deviates from 1 by more than `mask_threshold` are flagged in the
/// mask (they have drifted enough to act like defects).
struct GainDriftFault {
  static constexpr FaultKind kind = FaultKind::kGainDrift;
  double drift_per_frame = 0.005;
  double pixel_spread = 0.5;
  double mask_threshold = 0.05;
  std::uint64_t seed = 1;

  void apply(la::Matrix& frame, std::size_t frame_index,
             std::vector<bool>& mask) const;
};

// ---------------------------------------------------------------------------
// Measurement-level faults. These act on the encoded vector y (after
// sampling) and are applied by FaultScenario::corrupt_measurements.

/// ADC full-scale clamp: measurements outside [lo, hi] saturate to the rail.
struct AdcSaturationFault {
  static constexpr FaultKind kind = FaultKind::kAdcSaturation;
  double lo = 0.05;
  double hi = 0.95;

  /// Clamps y in place; sets `saturated[i]` for every clamped slot.
  void apply(la::Vector& y, std::size_t frame_index,
             std::vector<bool>& saturated) const;
};

/// Randomly dropped measurement slots (transfer loss between the flexible
/// array and the silicon decoder). Dropped slots are re-drawn per frame.
struct DroppedMeasurementFault {
  static constexpr FaultKind kind = FaultKind::kDroppedMeasurements;
  double rate = 0.05;  // fraction of measurement slots lost per frame
  std::uint64_t seed = 1;

  /// Sets `dropped[i]` for every lost slot (y itself is not modified; the
  /// scenario removes flagged slots from y and the pattern).
  void apply(const la::Vector& y, std::size_t frame_index,
             std::vector<bool>& dropped) const;
};

// ---------------------------------------------------------------------------
// Composition.

using Fault =
    std::variant<StuckPixelFault, LineFault, FlickerFault, ReadoutNoiseFault,
                 GainDriftFault, AdcSaturationFault, DroppedMeasurementFault>;

/// Tag of a type-erased fault.
FaultKind fault_kind(const Fault& fault);

/// True for kinds whose corruption is fixed across frames (stuck pixels,
/// line faults, gain drift); false for per-frame transients.
bool fault_is_persistent(FaultKind kind);

/// True for kinds applied to the measurement vector rather than the frame.
bool fault_is_measurement_level(FaultKind kind);

/// A corrupted frame with ground truth retained for evaluation.
struct FaultedFrame {
  la::Matrix values;             // frame after all frame-level faults
  std::vector<bool> mask;        // pixels corrupted this frame (sparse kinds)
  std::vector<bool> persistent;  // subset stemming from persistent kinds
  std::size_t corrupted_count = 0;  // set bits in `mask`
};

/// Corrupted measurements with ground truth retained for evaluation.
struct FaultedMeasurements {
  la::Vector values;        // surviving measurements, pattern order
  SamplingPattern pattern;  // pattern with dropped slots removed
  std::vector<std::size_t> dropped;  // original slot indices that were lost
  std::size_t saturated_count = 0;   // slots clamped by ADC saturation
};

/// An ordered set of faults applied together. Frame-level faults are applied
/// in insertion order (so e.g. noise-after-stuck differs from stuck-after-
/// noise, as it does physically); measurement-level faults likewise.
class FaultScenario {
 public:
  FaultScenario() = default;
  explicit FaultScenario(std::vector<Fault> faults);

  void add(Fault fault);
  const std::vector<Fault>& faults() const { return faults_; }
  bool has_frame_faults() const;
  bool has_measurement_faults() const;

  /// Applies all frame-level faults to a copy of `frame`.
  FaultedFrame corrupt_frame(const la::Matrix& frame,
                             std::size_t frame_index) const;

  /// Applies all measurement-level faults to measurements `y` taken with
  /// `pattern`. Dropped slots are removed from both the returned vector and
  /// the returned pattern, so the result feeds straight into a decoder.
  FaultedMeasurements corrupt_measurements(const la::Vector& y,
                                           const SamplingPattern& pattern,
                                           std::size_t frame_index) const;

 private:
  std::vector<Fault> faults_;
};

}  // namespace flexcs::cs
