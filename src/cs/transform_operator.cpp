#include "cs/transform_operator.hpp"

#include <utility>

#include "common/check.hpp"
#include "dsp/dct.hpp"

namespace flexcs::cs {

SubsampledTransformOperator::SubsampledTransformOperator(dsp::BasisKind basis,
                                                         SamplingPattern pattern)
    : basis_(basis), pattern_(std::move(pattern)) {
  FLEXCS_CHECK(pattern_.rows > 0 && pattern_.cols > 0,
               "SubsampledTransformOperator: empty grid");
  FLEXCS_CHECK(!pattern_.indices.empty(),
               "SubsampledTransformOperator: empty sampling pattern");
  const std::size_t n = pattern_.n();
  std::size_t prev = 0;
  for (std::size_t k = 0; k < pattern_.indices.size(); ++k) {
    const std::size_t idx = pattern_.indices[k];
    FLEXCS_CHECK(idx < n, "SubsampledTransformOperator: index out of range");
    FLEXCS_CHECK(k == 0 || idx > prev,
                 "SubsampledTransformOperator: indices not strictly increasing");
    prev = idx;
  }
  if (basis_ == dsp::BasisKind::kDct2D) {
    dr_ = dsp::dct_matrix(pattern_.rows);
    dc_ = dsp::dct_matrix(pattern_.cols);
  } else {
    // Haar dimension constraints surface at construction, not mid-solve.
    dsp::analyze(basis_, la::Matrix(pattern_.rows, pattern_.cols, 0.0));
  }
}

la::Vector SubsampledTransformOperator::apply(const la::Vector& x) const {
  FLEXCS_CHECK(x.size() == cols(),
               "SubsampledTransformOperator::apply shape mismatch");
  const la::Matrix grid = la::Matrix::from_flat(x, pattern_.rows, pattern_.cols);
  const la::Matrix frame =
      basis_ == dsp::BasisKind::kDct2D
          ? la::matmul(la::matmul_at_b(dr_, grid), dc_)  // = dsp::idct2d
          : dsp::synthesize(basis_, grid);
  la::Vector y(pattern_.m());
  for (std::size_t k = 0; k < pattern_.indices.size(); ++k)
    y[k] = frame.data()[pattern_.indices[k]];
  return y;
}

la::Vector SubsampledTransformOperator::apply_adjoint(const la::Vector& y) const {
  FLEXCS_CHECK(y.size() == rows(),
               "SubsampledTransformOperator::apply_adjoint shape mismatch");
  la::Matrix frame(pattern_.rows, pattern_.cols, 0.0);
  for (std::size_t k = 0; k < pattern_.indices.size(); ++k)
    frame.data()[pattern_.indices[k]] = y[k];
  const la::Matrix coeffs =
      basis_ == dsp::BasisKind::kDct2D
          ? la::matmul_a_bt(la::matmul(dr_, frame), dc_)  // = dsp::dct2d
          : dsp::analyze(basis_, frame);
  return coeffs.flatten();
}

}  // namespace flexcs::cs
