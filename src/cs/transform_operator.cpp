#include "cs/transform_operator.hpp"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "dsp/wavelet.hpp"

namespace flexcs::cs {

// Per-thread workspace: the operator is shared across decode threads, so the
// scratch cannot live on the (const) operator itself. One thread-local set
// of buffers serves every operator instance on that thread; buffers only
// grow, so a steady-state decode loop never reallocates.
struct SubsampledTransformOperator::Scratch {
  dsp::DctWorkspace dct;
  std::vector<double> grid;   // coefficient / frame grid (n doubles)
  std::vector<double> frame;  // second grid for the out-of-place DCT passes
  std::vector<double> haar;   // in-place Haar scratch (half-plane)
};

SubsampledTransformOperator::Scratch&
SubsampledTransformOperator::local_scratch() {
  thread_local Scratch s;
  return s;
}

namespace {

using SteadyClock = std::chrono::steady_clock;

std::uint64_t elapsed_ns(SteadyClock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(SteadyClock::now() -
                                                           t0)
          .count());
}

}  // namespace

SubsampledTransformOperator::SubsampledTransformOperator(dsp::BasisKind basis,
                                                         SamplingPattern pattern)
    : basis_(basis), pattern_(std::move(pattern)) {
  FLEXCS_CHECK(pattern_.rows > 0 && pattern_.cols > 0,
               "SubsampledTransformOperator: empty grid");
  FLEXCS_CHECK(!pattern_.indices.empty(),
               "SubsampledTransformOperator: empty sampling pattern");
  const std::size_t n = pattern_.n();
  std::size_t prev = 0;
  for (std::size_t k = 0; k < pattern_.indices.size(); ++k) {
    const std::size_t idx = pattern_.indices[k];
    FLEXCS_CHECK(idx < n, "SubsampledTransformOperator: index out of range");
    FLEXCS_CHECK(k == 0 || idx > prev,
                 "SubsampledTransformOperator: indices not strictly increasing");
    prev = idx;
  }
  if (basis_ == dsp::BasisKind::kDct2D) {
    row_plan_.emplace(pattern_.cols);
    col_plan_.emplace(pattern_.rows);
  } else {
    // Haar dimension constraints surface at construction, not mid-solve —
    // validated directly (no throwaway matrix, no probe transform).
    haar_levels_ = std::min(dsp::max_haar_levels(pattern_.rows),
                            dsp::max_haar_levels(pattern_.cols));
    FLEXCS_CHECK(haar_levels_ >= 1, "Haar basis requires even dimensions");
  }
}

std::size_t SubsampledTransformOperator::cached_state_bytes() const {
  std::size_t bytes = 0;
  if (row_plan_) bytes += row_plan_->memory_bytes();
  if (col_plan_) bytes += col_plan_->memory_bytes();
  return bytes;
}

SubsampledTransformOperator::ApplyStats
SubsampledTransformOperator::apply_stats() const {
  ApplyStats s;
  s.applies = apply_count_.load(std::memory_order_relaxed);
  s.adjoints = adjoint_count_.load(std::memory_order_relaxed);
  s.apply_seconds =
      static_cast<double>(apply_ns_.load(std::memory_order_relaxed)) * 1e-9;
  s.adjoint_seconds =
      static_cast<double>(adjoint_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return s;
}

void SubsampledTransformOperator::apply_into(const double* x, double* y,
                                             Scratch& ws) const {
  const std::size_t rows = pattern_.rows, cols = pattern_.cols;
  const std::size_t n = pattern_.n();
  ws.grid.resize(n);
  std::copy(x, x + n, ws.grid.begin());
  const double* frame = ws.grid.data();
  if (basis_ == dsp::BasisKind::kDct2D) {
    ws.frame.resize(n);
    dsp::idct2d_apply(*row_plan_, *col_plan_, ws.grid.data(), ws.frame.data(),
                      rows, cols, ws.dct);
    frame = ws.frame.data();
  } else {
    dsp::ihaar2d_inplace(ws.grid.data(), rows, cols, haar_levels_, ws.haar);
  }
  const std::size_t m = pattern_.indices.size();
  for (std::size_t k = 0; k < m; ++k) y[k] = frame[pattern_.indices[k]];
}

void SubsampledTransformOperator::adjoint_into(const double* y, double* x,
                                               Scratch& ws) const {
  const std::size_t rows = pattern_.rows, cols = pattern_.cols;
  const std::size_t n = pattern_.n();
  const std::size_t m = pattern_.indices.size();
  if (basis_ == dsp::BasisKind::kDct2D) {
    ws.grid.assign(n, 0.0);
    for (std::size_t k = 0; k < m; ++k) ws.grid[pattern_.indices[k]] = y[k];
    dsp::dct2d_apply(*row_plan_, *col_plan_, ws.grid.data(), x, rows, cols,
                     ws.dct);
  } else {
    // Haar analyses in place: scatter straight into the output grid.
    std::fill(x, x + n, 0.0);
    for (std::size_t k = 0; k < m; ++k) x[pattern_.indices[k]] = y[k];
    dsp::haar2d_inplace(x, rows, cols, haar_levels_, ws.haar);
  }
}

la::Vector SubsampledTransformOperator::apply(const la::Vector& x) const {
  FLEXCS_CHECK(x.size() == cols(),
               "SubsampledTransformOperator::apply shape mismatch");
  const auto t0 = SteadyClock::now();
  la::Vector y(pattern_.m());
  apply_into(x.data(), y.data(), local_scratch());
  apply_count_.fetch_add(1, std::memory_order_relaxed);
  apply_ns_.fetch_add(elapsed_ns(t0), std::memory_order_relaxed);
  return y;
}

la::Vector SubsampledTransformOperator::apply_adjoint(const la::Vector& y) const {
  FLEXCS_CHECK(y.size() == rows(),
               "SubsampledTransformOperator::apply_adjoint shape mismatch");
  const auto t0 = SteadyClock::now();
  la::Vector x(pattern_.n());
  adjoint_into(y.data(), x.data(), local_scratch());
  adjoint_count_.fetch_add(1, std::memory_order_relaxed);
  adjoint_ns_.fetch_add(elapsed_ns(t0), std::memory_order_relaxed);
  return x;
}

std::vector<la::Vector> SubsampledTransformOperator::apply_batch(
    const std::vector<la::Vector>& xs) const {
  for (const la::Vector& x : xs)
    FLEXCS_CHECK(x.size() == cols(),
                 "SubsampledTransformOperator::apply_batch shape mismatch");
  const auto t0 = SteadyClock::now();
  Scratch& ws = local_scratch();
  std::vector<la::Vector> out;
  out.reserve(xs.size());
  for (const la::Vector& x : xs) {
    la::Vector y(pattern_.m());
    apply_into(x.data(), y.data(), ws);
    out.push_back(std::move(y));
  }
  apply_count_.fetch_add(xs.size(), std::memory_order_relaxed);
  apply_ns_.fetch_add(elapsed_ns(t0), std::memory_order_relaxed);
  return out;
}

std::vector<la::Vector> SubsampledTransformOperator::apply_adjoint_batch(
    const std::vector<la::Vector>& ys) const {
  for (const la::Vector& y : ys)
    FLEXCS_CHECK(y.size() == rows(),
                 "SubsampledTransformOperator::apply_adjoint_batch shape "
                 "mismatch");
  const auto t0 = SteadyClock::now();
  Scratch& ws = local_scratch();
  std::vector<la::Vector> out;
  out.reserve(ys.size());
  for (const la::Vector& y : ys) {
    la::Vector x(pattern_.n());
    adjoint_into(y.data(), x.data(), ws);
    out.push_back(std::move(x));
  }
  adjoint_count_.fetch_add(ys.size(), std::memory_order_relaxed);
  adjoint_ns_.fetch_add(elapsed_ns(t0), std::memory_order_relaxed);
  return out;
}

}  // namespace flexcs::cs
