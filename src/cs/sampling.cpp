#include "cs/sampling.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace flexcs::cs {

SamplingPattern random_pattern(std::size_t rows, std::size_t cols,
                               double fraction, Rng& rng) {
  FLEXCS_CHECK(rows > 0 && cols > 0, "pattern over empty array");
  FLEXCS_CHECK(fraction > 0.0 && fraction <= 1.0,
               "sampling fraction must be in (0,1]");
  SamplingPattern p;
  p.rows = rows;
  p.cols = cols;
  const std::size_t n = rows * cols;
  const std::size_t m = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction * static_cast<double>(n)));
  p.indices = rng.sample_without_replacement(n, m);
  return p;
}

double resolve_fraction(double request, double fallback) {
  FLEXCS_CHECK(request == 0.0 || (request > 0.0 && request <= 1.0),
               "sampling fraction override must be 0 (default) or in (0,1]");
  FLEXCS_CHECK(fallback > 0.0 && fallback <= 1.0,
               "fallback sampling fraction must be in (0,1]");
  return request == 0.0 ? fallback : request;
}

SamplingPattern random_pattern_excluding(std::size_t rows, std::size_t cols,
                                         double fraction,
                                         const std::vector<bool>& exclude,
                                         Rng& rng) {
  FLEXCS_CHECK(rows > 0 && cols > 0, "pattern over empty array");
  FLEXCS_CHECK(exclude.size() == rows * cols, "exclude mask size mismatch");
  FLEXCS_CHECK(fraction > 0.0 && fraction <= 1.0,
               "sampling fraction must be in (0,1]");

  std::vector<std::size_t> good;
  good.reserve(exclude.size());
  for (std::size_t i = 0; i < exclude.size(); ++i)
    if (!exclude[i]) good.push_back(i);
  FLEXCS_CHECK(!good.empty(), "every pixel is excluded");

  const std::size_t n = rows * cols;
  const std::size_t want = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction * static_cast<double>(n)));
  const std::size_t m = std::min(want, good.size());

  const std::vector<std::size_t> pick =
      rng.sample_without_replacement(good.size(), m);
  SamplingPattern p;
  p.rows = rows;
  p.cols = cols;
  p.indices.reserve(m);
  for (std::size_t i : pick) p.indices.push_back(good[i]);
  std::sort(p.indices.begin(), p.indices.end());
  return p;
}

la::Vector apply_pattern(const SamplingPattern& p, const la::Vector& y) {
  FLEXCS_CHECK(y.size() == p.n(), "apply_pattern: frame size mismatch");
  la::Vector out(p.m());
  for (std::size_t i = 0; i < p.m(); ++i) {
    FLEXCS_CHECK(p.indices[i] < p.n(), "apply_pattern: pixel index out of range");
    out[i] = y[p.indices[i]];
  }
  return out;
}

la::Matrix pattern_matrix(const SamplingPattern& p) {
  la::Matrix phi(p.m(), p.n(), 0.0);
  for (std::size_t i = 0; i < p.m(); ++i) phi(i, p.indices[i]) = 1.0;
  return phi;
}

std::size_t ScanSchedule::total_reads() const {
  std::size_t total = 0;
  for (const auto& cyc : cycles)
    total += static_cast<std::size_t>(
        std::count(cyc.row_select.begin(), cyc.row_select.end(), true));
  return total;
}

ScanSchedule make_scan_schedule(const SamplingPattern& p) {
  ScanSchedule s;
  s.cycles.resize(p.cols);
  for (std::size_t c = 0; c < p.cols; ++c) {
    s.cycles[c].column = c;
    s.cycles[c].row_select.assign(p.rows, false);
  }
  for (std::size_t idx : p.indices) {
    const std::size_t r = idx / p.cols;
    const std::size_t c = idx % p.cols;
    FLEXCS_CHECK(r < p.rows, "pattern index out of range");
    s.cycles[c].row_select[r] = true;
  }
  return s;
}

SamplingPattern pattern_from_schedule(const ScanSchedule& s, std::size_t rows,
                                      std::size_t cols) {
  FLEXCS_CHECK(s.cycles.size() == cols, "schedule/shape mismatch");
  SamplingPattern p;
  p.rows = rows;
  p.cols = cols;
  for (const auto& cyc : s.cycles) {
    FLEXCS_CHECK(cyc.row_select.size() == rows, "schedule row width mismatch");
    for (std::size_t r = 0; r < rows; ++r)
      if (cyc.row_select[r]) p.indices.push_back(r * cols + cyc.column);
  }
  std::sort(p.indices.begin(), p.indices.end());
  return p;
}

}  // namespace flexcs::cs
