// Shared plumbing for the standalone bench_* sweeps (the ones with their own
// main, not the google-benchmark figures): flag parsing and JSON recording.
//
// Every standalone sweep accepts the same flags:
//
//   --smoke      tiny configuration for the ctest smoke registration
//   --json       machine-readable output (one JSON array on stdout)
//   --out PATH   where to record the JSON. Defaults to the bench's
//                BENCH_<name>.json at the repository root; an explicit
//                --out records there even on smoke runs (a default-path
//                smoke run never writes, so ctest cannot clobber a
//                recorded sweep).
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

namespace flexcs::bench {

struct BenchArgs {
  bool json = false;
  bool smoke = false;
  std::string out;  // --out override; empty selects the bench's default
  bool ok = true;   // false: unknown flag or missing --out value
};

inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      args.json = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      args.smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) {
        args.ok = false;
        return args;
      }
      args.out = argv[++i];
    } else {
      args.ok = false;
      return args;
    }
  }
  return args;
}

inline void print_bench_usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--smoke] [--json] [--out PATH]\n", argv0);
}

/// Records the JSON (best-effort: a read-only checkout only warns). Sweeps
/// default to the repo root so they are versioned alongside the code that
/// produced them.
inline void record_json(const std::string& json, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "recorded %s\n", path.c_str());
}

/// True when this run should record: every full run records to the default
/// path, and an explicit --out records unconditionally.
inline bool should_record(const BenchArgs& args) {
  return !args.smoke || !args.out.empty();
}

inline std::string record_path(const BenchArgs& args,
                               const std::string& default_path) {
  return args.out.empty() ? default_path : args.out;
}

}  // namespace flexcs::bench
