// Reproduces Fig. 6a: temperature-imaging RMSE with and without compressed
// sensing, sweeping the sparse-error rate (0-20 %) and the sampling
// percentage (45-60 %). Defects are assumed identified by test and excluded
// from sampling (the paper's Sec. 4.2 setting).
//
// Paper shape: without CS the RMSE grows steeply with the error rate
// (~0.20 at 10 %); with CS it stays low (~0.05 at 10 %) and rises only
// slightly up to 20 %; more sampling helps with diminishing returns, with
// the floor set by the Eq. 2 measurement-error term.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "cs/metrics.hpp"
#include "cs/pipeline.hpp"
#include "data/thermal.hpp"

namespace {

using namespace flexcs;

constexpr int kFramesPerCell = 4;

void print_tables() {
  data::ThermalHandGenerator generator;
  // Per-measurement read noise (the eps of Eq. 2): this is what bounds the
  // paper's Fig. 6a RMSE floor near 0.05 and what makes higher sampling
  // percentages pay off (the measurement term scales as sqrt(N/M) eps).
  cs::EncoderOptions eopts;
  eopts.measurement_noise = 0.03;
  const cs::Encoder encoder(eopts);
  const cs::Decoder decoder(32, 32);
  const double error_rates[] = {0.0, 0.05, 0.10, 0.15, 0.20};
  const double samplings[] = {0.45, 0.50, 0.55, 0.60};

  std::printf("Fig. 6a — temperature-imaging RMSE (mean over %d frames)\n",
              kFramesPerCell);
  Table t({"sparse errors", "no CS", "CS 45%", "CS 50%", "CS 55%",
           "CS 60%"});
  for (const double rate : error_rates) {
    double rmse_no_cs = 0.0;
    double rmse_cs[4] = {0.0, 0.0, 0.0, 0.0};
    for (int f = 0; f < kFramesPerCell; ++f) {
      Rng rng(1000 + f);  // same frames/defects across sampling columns
      const la::Matrix truth = generator.sample(rng).values;
      cs::DefectOptions dopts;
      dopts.rate = rate;
      const cs::CorruptedFrame corrupted =
          cs::inject_defects(truth, dopts, rng);
      rmse_no_cs += cs::rmse(corrupted.values, truth);
      for (int s = 0; s < 4; ++s) {
        const la::Matrix rec = cs::reconstruct_oracle(
            corrupted, samplings[s], encoder, decoder, rng);
        rmse_cs[s] += cs::rmse(rec, truth);
      }
    }
    t.add_row({strformat("%.0f%%", 100.0 * rate),
               strformat("%.3f", rmse_no_cs / kFramesPerCell),
               strformat("%.3f", rmse_cs[0] / kFramesPerCell),
               strformat("%.3f", rmse_cs[1] / kFramesPerCell),
               strformat("%.3f", rmse_cs[2] / kFramesPerCell),
               strformat("%.3f", rmse_cs[3] / kFramesPerCell)});
  }
  std::printf("%s", t.to_text().c_str());
  std::printf("paper headline: 10%% errors -> RMSE 0.20 without CS, "
              "0.05 with CS\n\n");
}

void BM_Fig6aSingleDecode(benchmark::State& state) {
  Rng rng(1);
  data::ThermalHandGenerator generator;
  const la::Matrix truth = generator.sample(rng).values;
  const cs::Encoder encoder;
  const cs::Decoder decoder(32, 32);
  const cs::SamplingPattern pattern = cs::random_pattern(32, 32, 0.5, rng);
  const la::Vector y = encoder.encode(truth, pattern, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decoder.decode(pattern, y));
  }
}
BENCHMARK(BM_Fig6aSingleDecode)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
