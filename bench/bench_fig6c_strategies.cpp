// Reproduces Fig. 6c: RMSE of the advanced sampling strategies when the
// defective pixels are NOT known in advance (Sec. 4.3):
//
//   * resampling (10 rounds) with mean / median aggregation — the paper's
//     method (median preferred as "more robust to outliers");
//   * resampling with the library's residual-trim refinement;
//   * RPCA outlier detection, then exclusion and reconstruction.
//
// Paper shape: both strategies give a sizeable RMSE reduction; RPCA
// outperforms resampling at higher (>8 %) error rates.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "cs/metrics.hpp"
#include "cs/pipeline.hpp"
#include "data/thermal.hpp"

namespace {

using namespace flexcs;

constexpr int kFrames = 2;
constexpr int kRounds = 10;
constexpr double kSampling = 0.5;

// Aggregates per-pixel mean and median from a set of reconstructions.
la::Matrix aggregate(const std::vector<la::Matrix>& recs, bool median) {
  la::Matrix out(recs[0].rows(), recs[0].cols(), 0.0);
  std::vector<double> vals(recs.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    for (std::size_t r = 0; r < recs.size(); ++r)
      vals[r] = recs[r].data()[i];
    if (median) {
      std::nth_element(vals.begin(), vals.begin() + vals.size() / 2,
                       vals.end());
      out.data()[i] = vals[vals.size() / 2];
    } else {
      double s = 0.0;
      for (double v : vals) s += v;
      out.data()[i] = s / static_cast<double>(vals.size());
    }
  }
  return out;
}

void print_tables() {
  data::ThermalHandGenerator generator;
  const cs::Encoder encoder;
  const cs::Decoder decoder(32, 32);

  std::printf(
      "Fig. 6c — RMSE of sampling strategies with unknown defects "
      "(mean over %d frames, %d rounds, %.0f%% sampling)\n",
      kFrames, kRounds, 100.0 * kSampling);
  Table t({"sparse errors", "no CS", "resample mean", "resample median",
           "resample median+trim", "RPCA exclusion"});

  for (const double rate : {0.03, 0.05, 0.08, 0.10}) {
    double r_no = 0, r_mean = 0, r_med = 0, r_trim = 0, r_rpca = 0;
    for (int f = 0; f < kFrames; ++f) {
      Rng rng(500 + f);
      const la::Matrix truth = generator.sample(rng).values;
      cs::DefectOptions dopts;
      dopts.rate = rate;
      const cs::CorruptedFrame cf = cs::inject_defects(truth, dopts, rng);
      r_no += cs::rmse(cf.values, truth);

      // One set of plain rounds serves both mean and median columns.
      std::vector<la::Matrix> plain, trimmed;
      for (int round = 0; round < kRounds; ++round) {
        const cs::SamplingPattern p =
            cs::random_pattern(32, 32, kSampling, rng);
        const la::Vector y = encoder.encode(cf.values, p, rng);
        plain.push_back(decoder.decode(p, y).frame);
        trimmed.push_back(cs::decode_trimmed(decoder, p, y));
      }
      r_mean += cs::rmse(aggregate(plain, /*median=*/false), truth);
      r_med += cs::rmse(aggregate(plain, /*median=*/true), truth);
      r_trim += cs::rmse(aggregate(trimmed, /*median=*/true), truth);

      cs::RpcaFilterOptions fopts;
      const auto rpca_rec = cs::reconstruct_rpca_batch(
          {cf.values}, kSampling, fopts, encoder, decoder, rng);
      r_rpca += cs::rmse(rpca_rec[0], truth);
    }
    t.add_row({strformat("%.0f%%", 100.0 * rate),
               strformat("%.3f", r_no / kFrames),
               strformat("%.3f", r_mean / kFrames),
               strformat("%.3f", r_med / kFrames),
               strformat("%.3f", r_trim / kFrames),
               strformat("%.3f", r_rpca / kFrames)});
  }
  std::printf("%s", t.to_text().c_str());
  std::printf("paper shape: median beats mean; RPCA wins above ~8%% "
              "errors\n\n");
}

void BM_RpcaDetection32x32(benchmark::State& state) {
  Rng rng(1);
  data::ThermalHandGenerator generator;
  la::Matrix frame = generator.sample(rng).values;
  cs::DefectOptions dopts;
  dopts.rate = 0.06;
  const cs::CorruptedFrame cf = cs::inject_defects(frame, dopts, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cs::rpca_outlier_masks({cf.values}, cs::RpcaFilterOptions{}));
  }
}
BENCHMARK(BM_RpcaDetection32x32)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
