// Fault-matrix sweep: fault kind x severity x recovery strategy, driven
// through the runtime::RobustPipeline escalation ladder. Each matrix cell
// caps the ladder at one strategy (opts.max_rung) and streams a few faulted
// thermal frames through it, so the table shows what every rung buys — and
// costs — against every fault kind of cs/faults.hpp.
//
// Usage:
//   bench_fault_matrix [--smoke] [--json] [--out PATH]
//
//   --smoke   tiny configuration (16x16, one frame, one severity, rungs 0-1)
//             used by the ctest smoke registration; finishes in seconds.
//   --json    machine-readable output instead of the text table.
//
// JSON schema (--json): stdout carries exactly one JSON array; one object
// per (kind, severity, strategy) cell, all keys always present:
//   {
//     "kind":              string  — cs::fault_kind_name, e.g. "stuck-pixel"
//     "severity":          number  — the severity knob for that kind (below)
//     "strategy":          string  — runtime::strategy_name of the ladder
//                                    ceiling for this cell
//     "frames":            integer — frames averaged
//     "rmse":              number  — mean RMSE vs ground truth
//     "accept_rate":       number  — fraction of frames whose ground-truth-
//                                    free sanity check passed
//     "decode_calls":      number  — mean sparse-solver calls per frame
//     "escalation_depth":  number  — mean rungs climbed beyond plain decode
//     "solver_iterations": number  — mean inner-solver iterations of the
//                                    chosen candidate per frame
//     "decode_seconds":    number  — mean wall-clock seconds per frame
//   }
//
// Full (non-smoke) --json runs additionally record the same array to
// BENCH_fault_matrix.json at the repository root; smoke runs never touch
// that file so the ctest registration cannot overwrite a recorded sweep.
//
// Severity mapping per kind (the "rate" axis of the sweep):
//   stuck-pixel           fraction of pixels stuck
//   line                  severity ignored; one stuck-high row
//   flicker               per-frame flicker probability
//   readout-noise         Gaussian sigma
//   gain-drift            gain drift per frame
//   adc-saturation        rails at [severity, 1 - severity]
//   dropped-measurements  fraction of measurement slots lost
//
// FISTA is the decode solver throughout: its convergence flag discriminates
// clean from corrupted frames, which the ladder's acceptance check relies on.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "cs/faults.hpp"
#include "cs/metrics.hpp"
#include "data/thermal.hpp"
#include "runtime/pipeline.hpp"
#include "solvers/fista.hpp"

namespace {

using namespace flexcs;

struct SweepConfig {
  std::size_t dim = 32;
  int frames = 2;
  std::vector<double> severities = {0.02, 0.05, 0.10};
  std::vector<runtime::Strategy> strategies = {
      runtime::Strategy::kPlainDecode, runtime::Strategy::kTrimmedDecode,
      runtime::Strategy::kFreshPatternRetry, runtime::Strategy::kResample,
      runtime::Strategy::kRpcaWindow};
  int resample_rounds = 4;
};

SweepConfig smoke_config() {
  SweepConfig cfg;
  cfg.dim = 16;
  cfg.frames = 1;
  cfg.severities = {0.05};
  cfg.strategies = {runtime::Strategy::kPlainDecode,
                    runtime::Strategy::kTrimmedDecode};
  cfg.resample_rounds = 2;
  return cfg;
}

constexpr cs::FaultKind kKinds[] = {
    cs::FaultKind::kStuckPixel,    cs::FaultKind::kLine,
    cs::FaultKind::kFlicker,       cs::FaultKind::kReadoutNoise,
    cs::FaultKind::kGainDrift,     cs::FaultKind::kAdcSaturation,
    cs::FaultKind::kDroppedMeasurements,
};

// Frame-level scenario for the kind (empty for measurement-level kinds).
cs::FaultScenario frame_scenario(cs::FaultKind kind, double severity,
                                 std::size_t dim) {
  switch (kind) {
    case cs::FaultKind::kStuckPixel:
      return cs::FaultScenario(
          {cs::StuckPixelFault{severity, cs::DefectPolarity::kRandom, 99}});
    case cs::FaultKind::kLine: {
      cs::LineFault lf;
      lf.orientation = cs::LineOrientation::kRow;
      lf.line = dim / 3;
      lf.mode = cs::LineFailureMode::kStuckHigh;
      return cs::FaultScenario({lf});
    }
    case cs::FaultKind::kFlicker:
      return cs::FaultScenario(
          {cs::FlickerFault{severity, cs::DefectPolarity::kRandom, 99}});
    case cs::FaultKind::kReadoutNoise:
      return cs::FaultScenario({cs::ReadoutNoiseFault{severity, 99}});
    case cs::FaultKind::kGainDrift: {
      cs::GainDriftFault gd;
      gd.drift_per_frame = severity;
      gd.seed = 99;
      return cs::FaultScenario({gd});
    }
    case cs::FaultKind::kAdcSaturation:
    case cs::FaultKind::kDroppedMeasurements:
      return {};
  }
  return {};
}

// Measurement-level scenario for the kind (empty for frame-level kinds).
cs::FaultScenario measurement_scenario(cs::FaultKind kind, double severity) {
  switch (kind) {
    case cs::FaultKind::kAdcSaturation: {
      cs::AdcSaturationFault sat;
      sat.lo = severity;
      sat.hi = 1.0 - severity;
      return cs::FaultScenario({sat});
    }
    case cs::FaultKind::kDroppedMeasurements:
      return cs::FaultScenario({cs::DroppedMeasurementFault{severity, 99}});
    default:
      return {};
  }
}

struct Cell {
  cs::FaultKind kind;
  double severity = 0.0;
  runtime::Strategy strategy;
  int frames = 0;
  double rmse = 0.0;
  double accept_rate = 0.0;
  double decode_calls = 0.0;
  double escalation_depth = 0.0;
  double solver_iterations = 0.0;
  double decode_seconds = 0.0;
};

Cell run_cell(const SweepConfig& cfg, cs::FaultKind kind, double severity,
              runtime::Strategy ceiling) {
  Cell cell;
  cell.kind = kind;
  cell.severity = severity;
  cell.strategy = ceiling;
  cell.frames = cfg.frames;

  runtime::RobustPipelineOptions opts;
  opts.max_rung = ceiling;
  opts.budget.resample_rounds = cfg.resample_rounds;
  opts.measurement_faults = measurement_scenario(kind, severity);
  runtime::RobustPipeline pipe(
      cfg.dim, cfg.dim, opts, std::make_shared<solvers::FistaSolver>());

  const cs::FaultScenario faults = frame_scenario(kind, severity, cfg.dim);
  data::ThermalOptions topts;
  topts.rows = topts.cols = cfg.dim;
  const data::ThermalHandGenerator gen(topts);

  Rng frame_rng(7);
  Rng pipe_rng(11);
  for (int f = 0; f < cfg.frames; ++f) {
    const la::Matrix truth = gen.sample(frame_rng).values;
    const la::Matrix corrupted =
        faults.has_frame_faults()
            ? faults.corrupt_frame(truth, static_cast<std::size_t>(f)).values
            : truth;
    const auto res = pipe.process(corrupted, pipe_rng);
    cell.rmse += cs::rmse(res.frame, truth);
    cell.accept_rate += res.report.accepted ? 1.0 : 0.0;
    cell.decode_calls += res.report.decode_calls;
    cell.escalation_depth += res.report.escalation_depth;
    cell.solver_iterations += res.report.solver_iterations;
    cell.decode_seconds += res.report.decode_seconds;
  }
  const double n = static_cast<double>(cfg.frames);
  cell.rmse /= n;
  cell.accept_rate /= n;
  cell.decode_calls /= n;
  cell.escalation_depth /= n;
  cell.solver_iterations /= n;
  cell.decode_seconds /= n;
  return cell;
}

std::string to_json(const std::vector<Cell>& cells) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out += strformat(
        "  {\"kind\": \"%s\", \"severity\": %.4f, \"strategy\": \"%s\", "
        "\"frames\": %d, \"rmse\": %.6f, \"accept_rate\": %.4f, "
        "\"decode_calls\": %.2f, \"escalation_depth\": %.2f, "
        "\"solver_iterations\": %.1f, \"decode_seconds\": %.6f}%s\n",
        cs::fault_kind_name(c.kind), c.severity,
        runtime::strategy_name(c.strategy), c.frames, c.rmse, c.accept_rate,
        c.decode_calls, c.escalation_depth, c.solver_iterations,
        c.decode_seconds, i + 1 < cells.size() ? "," : "");
  }
  out += "]\n";
  return out;
}

void print_table(const std::vector<Cell>& cells, const SweepConfig& cfg) {
  std::printf(
      "Fault matrix — RobustPipeline ladder capped per strategy "
      "(%zux%zu, %d frame(s) per cell, FISTA)\n",
      cfg.dim, cfg.dim, cfg.frames);
  Table t({"fault kind", "severity", "strategy", "rmse", "accept",
           "calls", "depth", "iters", "sec"});
  for (const Cell& c : cells) {
    t.add_row({cs::fault_kind_name(c.kind), strformat("%.2f", c.severity),
               runtime::strategy_name(c.strategy), strformat("%.4f", c.rmse),
               strformat("%.0f%%", 100.0 * c.accept_rate),
               strformat("%.1f", c.decode_calls),
               strformat("%.1f", c.escalation_depth),
               strformat("%.0f", c.solver_iterations),
               strformat("%.4f", c.decode_seconds)});
  }
  std::printf("%s", t.to_text().c_str());
  std::printf(
      "shape: higher rungs trade decode calls for lower RMSE on sparse "
      "faults; dense noise is absorbed, not escalated\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  if (!args.ok) {
    bench::print_bench_usage(argv[0]);
    return 2;
  }
  const SweepConfig cfg = args.smoke ? smoke_config() : SweepConfig{};

  std::vector<Cell> cells;
  for (const cs::FaultKind kind : kKinds) {
    // Line faults have no severity axis; sweep them once.
    const bool has_severity = kind != cs::FaultKind::kLine;
    const std::vector<double> severities =
        has_severity ? cfg.severities
                     : std::vector<double>{cfg.severities.front()};
    for (const double severity : severities)
      for (const runtime::Strategy strategy : cfg.strategies)
        cells.push_back(run_cell(cfg, kind, severity, strategy));
  }

  if (args.json) {
    const std::string out = to_json(cells);
    std::fputs(out.c_str(), stdout);
    if (bench::should_record(args))
      bench::record_json(out, bench::record_path(
          args, FLEXCS_SOURCE_DIR "/BENCH_fault_matrix.json"));
  } else {
    print_table(cells, cfg);
  }
  return 0;
}
