// Reproduces the yield claims of Sec. 3.2: s-CNT purity > 99.997 % gives
// CNT-TFT yield > 99.9 % (validated in the paper over > 5000 devices), and
// makes the 304-TFT shift register and the sensor array manufacturable.
// Also connects the process yield to the sparse-error rates swept in Sec. 4.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "fe/yield.hpp"

namespace {

using namespace flexcs;

void print_tables() {
  std::printf("Sec. 3.2 — purity vs yield (Poisson m-CNT bridging model, "
              "analytic + Monte-Carlo over 5000 devices)\n");
  Table t({"s-CNT purity", "TFT yield", "MC yield (5000 TFTs)",
           "304-TFT SR yield", "9-TFT amp yield"});
  Rng rng(1);
  for (double purity : {0.99, 0.999, 0.9999, 0.99997}) {
    fe::CntProcess proc;
    proc.purity = purity;
    const std::size_t devices = 5000;
    const std::size_t fails = fe::sample_failing_tfts(proc, devices, rng);
    t.add_row({strformat("%.5f", purity),
               strformat("%.5f", fe::tft_yield(proc)),
               strformat("%.5f", 1.0 - static_cast<double>(fails) /
                                           static_cast<double>(devices)),
               strformat("%.4f", fe::circuit_yield(proc, 304)),
               strformat("%.4f", fe::circuit_yield(proc, 9))});
  }
  std::printf("%s", t.to_text().c_str());
  std::printf("paper: purity > 99.997%% -> TFT yield > 99.9%% "
              "(>5000 devices measured)\n\n");

  std::printf("Pixel sparse-error rate = TFT defects + transient errors "
              "(the x-axis of Fig. 6)\n");
  Table e({"purity", "transient rate", "expected pixel error rate"});
  for (double purity : {0.999, 0.99997}) {
    for (double transient : {0.0, 0.05, 0.10, 0.20}) {
      fe::CntProcess proc;
      proc.purity = purity;
      e.add_row({strformat("%.5f", purity), strformat("%.2f", transient),
                 strformat("%.4f",
                           fe::expected_pixel_error_rate(proc, transient))});
    }
  }
  std::printf("%s\n", e.to_text().c_str());
}

void BM_McCircuitYield(benchmark::State& state) {
  fe::CntProcess proc;
  proc.purity = 0.999;
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fe::mc_circuit_yield(proc, 304, 200, rng));
  }
}
BENCHMARK(BM_McCircuitYield);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
