// Reproduces Fig. 2 of the paper: DCT-domain sparsity statistics of the
// three body-sensing signal types.
//
//   Fig. 2a — sorted DCT-coefficient decay (normalised magnitude at a set
//             of rank positions) for temperature (32x32), tactile (32x32)
//             and ultrasound (100x33) frames;
//   Fig. 2b — significant-coefficient count over 100 samples per type,
//             threshold |c| >= 1e-4 * max|c|.
//
// Expected shape (paper): rapid decay over ~2 decades; ~50 % of the
// coefficients significant for all three signal types.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <memory>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "data/tactile.hpp"
#include "data/thermal.hpp"
#include "data/ultrasound.hpp"
#include "dsp/basis.hpp"
#include "dsp/sparsity.hpp"

namespace {

using namespace flexcs;

struct Source {
  const char* label;
  std::unique_ptr<data::FrameGenerator> gen;
};

std::vector<Source> make_sources() {
  std::vector<Source> out;
  out.push_back({"temperature 32x32",
                 std::make_unique<data::ThermalHandGenerator>()});
  out.push_back({"tactile 32x32", std::make_unique<data::TactileGenerator>()});
  out.push_back({"ultrasound 100x33",
                 std::make_unique<data::UltrasoundGenerator>()});
  return out;
}

void print_tables() {
  auto sources = make_sources();

  // --- Fig. 2a: sorted-coefficient decay of a representative frame.
  std::printf("Fig. 2a — sorted |DCT| coefficient decay (normalised)\n");
  Table decay({"signal", "rank 1", "1%", "10%", "25%", "50%", "100%"});
  for (auto& s : sources) {
    Rng rng(101);
    const la::Matrix coeffs =
        dsp::analyze(dsp::BasisKind::kDct2D, s.gen->sample(rng).values);
    const la::Vector sorted = dsp::sorted_abs_coefficients(coeffs);
    const std::size_t n = sorted.size();
    auto at_frac = [&](double f) {
      const std::size_t idx =
          std::min(n - 1, static_cast<std::size_t>(f * static_cast<double>(n)));
      return sorted[idx] / sorted[0];
    };
    decay.add_row({s.label, "1.0", strformat("%.2e", at_frac(0.01)),
                   strformat("%.2e", at_frac(0.10)),
                   strformat("%.2e", at_frac(0.25)),
                   strformat("%.2e", at_frac(0.50)),
                   strformat("%.2e", sorted[n - 1] / sorted[0])});
  }
  std::printf("%s\n", decay.to_text().c_str());

  // --- Fig. 2b: significant-coefficient statistics over 100 samples.
  std::printf(
      "Fig. 2b — significant DCT coefficients over 100 samples "
      "(|c| >= 1e-4 max)\n");
  Table sig({"signal", "N", "mean K", "std K", "mean K/N",
             "paper K/N"});
  for (auto& s : sources) {
    Rng rng(202);
    const int samples = 100;
    double sum = 0.0, sum2 = 0.0;
    std::size_t n = 0;
    for (int i = 0; i < samples; ++i) {
      const la::Matrix coeffs =
          dsp::analyze(dsp::BasisKind::kDct2D, s.gen->sample(rng).values);
      n = coeffs.size();
      const double k =
          static_cast<double>(dsp::significant_count(coeffs, 1e-4));
      sum += k;
      sum2 += k * k;
    }
    const double mean = sum / samples;
    const double var = std::max(0.0, sum2 / samples - mean * mean);
    sig.add_row({s.label, strformat("%zu", n), strformat("%.0f", mean),
                 strformat("%.0f", std::sqrt(var)),
                 strformat("%.2f", mean / static_cast<double>(n)), "~0.5"});
  }
  std::printf("%s\n", sig.to_text().c_str());
}

// Micro-benchmarks: the sparsity-analysis kernels themselves.
void BM_Dct2D_32x32(benchmark::State& state) {
  Rng rng(1);
  data::ThermalHandGenerator gen;
  const la::Matrix frame = gen.sample(rng).values;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::analyze(dsp::BasisKind::kDct2D, frame));
  }
}
BENCHMARK(BM_Dct2D_32x32);

void BM_SignificantCount(benchmark::State& state) {
  Rng rng(2);
  data::UltrasoundGenerator gen;
  const la::Matrix coeffs =
      dsp::analyze(dsp::BasisKind::kDct2D, gen.sample(rng).values);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::significant_count(coeffs, 1e-4));
  }
}
BENCHMARK(BM_SignificantCount);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
