// Streaming overload sweep: offered load x backpressure policy through the
// runtime::StreamServer. Each cell paces producer threads at a multiple of
// the deadline-bound service capacity (workers / frame_deadline) and reports
// tail latency plus the quality of the frames actually delivered, so the
// table shows what each policy trades away under overload:
//
//   block        latency grows with queue depth (every frame waits);
//   drop-oldest  latency stays flat but frames are lost;
//   degrade      frames cheapen (smaller ladder budget, tighter solve
//                deadline) so the queue drains and the tail stays bounded.
//
// The acceptance shape this bench exists to demonstrate: at 2x offered load,
// Degrade holds p99 submit->complete latency within 2x the per-frame
// deadline while plain Block does not, with delivered-frame RMSE reported
// for both.
//
// Usage:
//   bench_stream_load [--smoke] [--json] [--out PATH]
//
//   --smoke   tiny configuration (16x16, one load factor, two policies)
//             used by the ctest smoke registration; finishes in seconds.
//   --json    machine-readable output instead of the text table.
//
// JSON schema (--json): stdout carries exactly one JSON array; one object
// per (policy, load) cell, all keys always present:
//   {
//     "policy":                 string  — backpressure_policy_name
//     "load":                   number  — offered / deadline-bound capacity
//     "deadline_seconds":       number  — per-frame processing deadline
//     "offered":                integer — frames submitted
//     "completed":              integer — frames delivered
//     "dropped":                integer — DropOldest evictions
//     "degraded":               integer — frames processed at level >= 1
//     "deadline_expired":       integer — frames whose solve was cut short
//     "stalled":                integer — watchdog cancellations
//     "queue_high_water":       integer — max queue depth observed
//     "p50_latency_seconds":    number  — median submit->complete latency
//     "p99_latency_seconds":    number  — tail submit->complete latency
//     "p99_over_deadline":      number  — p99 / deadline (the criterion)
//     "rmse_delivered":         number  — mean RMSE of delivered frames vs
//                                         ground truth (dropped frames are
//                                         excluded: they were never served)
//     "mean_solver_iterations": number  — mean inner-solver iterations of
//                                         the chosen candidate per frame
//     "mean_decode_seconds":    number  — mean processing wall-clock
//   }
//
// Full (non-smoke) --json runs additionally record the same array to
// BENCH_stream_load.json at the repository root; smoke runs never touch
// that file so the ctest registration cannot overwrite a recorded sweep.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "cs/faults.hpp"
#include "cs/metrics.hpp"
#include "data/thermal.hpp"
#include "runtime/stream.hpp"
#include "solvers/fista.hpp"

namespace {

using namespace flexcs;

struct SweepConfig {
  std::size_t dim = 24;
  // One worker on purpose: the sweep isolates backpressure-policy behaviour
  // from parallel speedup (and stays honest on single-core runners); the
  // multi-worker paths are exercised by tests/test_stream.cpp.
  std::size_t workers = 1;
  std::size_t queue_capacity = 6;
  std::size_t streams = 2;  // concurrent producer threads
  std::size_t frames = 40;  // total frames offered per cell
  double deadline_seconds = 0.05;
  double stuck_rate = 0.10;
  std::vector<double> loads = {0.5, 1.0, 2.0};
  std::vector<runtime::BackpressurePolicy> policies = {
      runtime::BackpressurePolicy::kBlock,
      runtime::BackpressurePolicy::kDropOldest,
      runtime::BackpressurePolicy::kDegrade};
};

SweepConfig smoke_config() {
  SweepConfig cfg;
  cfg.dim = 16;
  cfg.frames = 8;
  cfg.deadline_seconds = 0.02;
  cfg.queue_capacity = 4;
  cfg.loads = {2.0};
  cfg.policies = {runtime::BackpressurePolicy::kBlock,
                  runtime::BackpressurePolicy::kDegrade};
  return cfg;
}

struct LoadCell {
  runtime::BackpressurePolicy policy;
  double load = 0.0;
  double deadline_seconds = 0.0;
  runtime::StreamHealth health;
  double p99_over_deadline = 0.0;
  double rmse_delivered = 0.0;
  double mean_solver_iterations = 0.0;
  double mean_decode_seconds = 0.0;
};

LoadCell run_cell(const SweepConfig& cfg, runtime::BackpressurePolicy policy,
                  double load) {
  LoadCell cell;
  cell.policy = policy;
  cell.load = load;
  cell.deadline_seconds = cfg.deadline_seconds;

  // One fixed (truth, corrupted) pair per stream: latency behaviour is the
  // subject here, and identical frames per stream keep the RMSE mapping
  // valid even when DropOldest evicts arbitrary queue entries.
  data::ThermalOptions topts;
  topts.rows = topts.cols = cfg.dim;
  const data::ThermalHandGenerator gen(topts);
  std::vector<la::Matrix> truths;
  std::vector<la::Matrix> corrupted;
  for (std::size_t s = 0; s < cfg.streams; ++s) {
    Rng rng(100 + s);
    truths.push_back(gen.sample(rng).values);
    corrupted.push_back(
        cs::FaultScenario({cs::StuckPixelFault{cfg.stuck_rate,
                                               cs::DefectPolarity::kRandom,
                                               200 + s}})
            .corrupt_frame(truths.back(), 0)
            .values);
  }

  runtime::StreamOptions opts;
  opts.workers = cfg.workers;
  opts.queue_capacity = cfg.queue_capacity;
  opts.policy = policy;
  opts.frame_deadline_seconds = cfg.deadline_seconds;
  opts.solver = std::make_shared<solvers::FistaSolver>();
  opts.seed = 0xbe7c;
  runtime::StreamServer server(cfg.dim, cfg.dim, opts);

  // Deadline-bound service capacity is workers / deadline frames per
  // second; each producer paces its share of load x capacity.
  const double offered_rate =
      load * static_cast<double>(cfg.workers) / cfg.deadline_seconds;
  const auto per_stream_interval = std::chrono::duration<double>(
      static_cast<double>(cfg.streams) / offered_rate);
  const std::size_t frames_per_stream = cfg.frames / cfg.streams;

  std::vector<std::thread> producers;  // flexcs-lint: allow(threading)
  for (std::size_t s = 0; s < cfg.streams; ++s) {
    producers.emplace_back([&, s] {
      // Stagger stream starts across one interval so arrivals interleave
      // instead of colliding at t = 0.
      std::this_thread::sleep_for(per_stream_interval * s /
                                  static_cast<double>(cfg.streams));
      for (std::size_t f = 0; f < frames_per_stream; ++f) {
        server.submit(s, corrupted[s]);
        std::this_thread::sleep_for(per_stream_interval);
      }
    });
  }
  for (auto& t : producers) t.join();
  server.close();

  cell.health = server.health();
  const std::vector<runtime::StreamResult> results = server.drain_results();
  for (const runtime::StreamResult& r : results) {
    cell.rmse_delivered += cs::rmse(r.frame, truths[r.stream_id]);
    cell.mean_solver_iterations += r.report.solver_iterations;
    cell.mean_decode_seconds += r.report.decode_seconds;
  }
  if (!results.empty()) {
    const double n = static_cast<double>(results.size());
    cell.rmse_delivered /= n;
    cell.mean_solver_iterations /= n;
    cell.mean_decode_seconds /= n;
  }
  cell.p99_over_deadline =
      cell.health.p99_latency_seconds / cfg.deadline_seconds;
  return cell;
}

std::string to_json(const std::vector<LoadCell>& cells) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const LoadCell& c = cells[i];
    const runtime::StreamHealth& h = c.health;
    out += strformat(
        "  {\"policy\": \"%s\", \"load\": %.2f, \"deadline_seconds\": %.4f, "
        "\"offered\": %zu, \"completed\": %zu, \"dropped\": %zu, "
        "\"degraded\": %zu, \"deadline_expired\": %zu, \"stalled\": %zu, "
        "\"queue_high_water\": %zu, \"p50_latency_seconds\": %.6f, "
        "\"p99_latency_seconds\": %.6f, \"p99_over_deadline\": %.3f, "
        "\"rmse_delivered\": %.6f, \"mean_solver_iterations\": %.1f, "
        "\"mean_decode_seconds\": %.6f}%s\n",
        runtime::backpressure_policy_name(c.policy), c.load,
        c.deadline_seconds, h.submitted, h.completed, h.dropped, h.degraded,
        h.deadline_expired, h.stalled, h.queue_high_water,
        h.p50_latency_seconds, h.p99_latency_seconds, c.p99_over_deadline,
        c.rmse_delivered, c.mean_solver_iterations, c.mean_decode_seconds,
        i + 1 < cells.size() ? "," : "");
  }
  out += "]\n";
  return out;
}

void print_table(const std::vector<LoadCell>& cells, const SweepConfig& cfg) {
  std::printf(
      "Stream load sweep — StreamServer, %zux%zu frames, %zu workers, "
      "queue %zu, deadline %.0f ms\n",
      cfg.dim, cfg.dim, cfg.workers, cfg.queue_capacity,
      1e3 * cfg.deadline_seconds);
  Table t({"policy", "load", "done", "drop", "degr", "expir", "p50 ms",
           "p99 ms", "p99/D", "rmse"});
  for (const LoadCell& c : cells) {
    const runtime::StreamHealth& h = c.health;
    t.add_row({runtime::backpressure_policy_name(c.policy),
               strformat("%.1fx", c.load), strformat("%zu", h.completed),
               strformat("%zu", h.dropped), strformat("%zu", h.degraded),
               strformat("%zu", h.deadline_expired),
               strformat("%.1f", 1e3 * h.p50_latency_seconds),
               strformat("%.1f", 1e3 * h.p99_latency_seconds),
               strformat("%.2f", c.p99_over_deadline),
               strformat("%.4f", c.rmse_delivered)});
  }
  std::printf("%s", t.to_text().c_str());
  std::printf(
      "shape: under overload Block's p99 grows with queue depth while "
      "Degrade cheapens frames to keep p99 within ~2x the deadline\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  if (!args.ok) {
    bench::print_bench_usage(argv[0]);
    return 2;
  }
  const SweepConfig cfg = args.smoke ? smoke_config() : SweepConfig{};

  std::vector<LoadCell> cells;
  for (const runtime::BackpressurePolicy policy : cfg.policies)
    for (const double load : cfg.loads)
      cells.push_back(run_cell(cfg, policy, load));

  if (args.json) {
    const std::string out = to_json(cells);
    std::fputs(out.c_str(), stdout);
    if (bench::should_record(args))
      bench::record_json(out, bench::record_path(
          args, FLEXCS_SOURCE_DIR "/BENCH_stream_load.json"));
  } else {
    print_table(cells, cfg);
  }
  return 0;
}
