// Reproduces the communication-cost analysis of Sec. 4.1 and Eq. 1:
// with K ≈ N/2 significant coefficients, M ≈ K log2(N/K) ≈ N/2 random
// measurements suffice, cutting the A/D-conversion (the readout bottleneck)
// and communication cost to M/N ≈ 0.5 of a full scan.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "cs/theory.hpp"
#include "data/tactile.hpp"
#include "data/thermal.hpp"
#include "data/ultrasound.hpp"
#include "dsp/basis.hpp"
#include "dsp/sparsity.hpp"

namespace {

using namespace flexcs;

void print_tables() {
  struct Source {
    const char* label;
    std::unique_ptr<data::FrameGenerator> gen;
  };
  std::vector<Source> sources;
  sources.push_back({"temperature 32x32",
                     std::make_unique<data::ThermalHandGenerator>()});
  sources.push_back(
      {"tactile 32x32", std::make_unique<data::TactileGenerator>()});
  sources.push_back({"ultrasound 100x33",
                     std::make_unique<data::UltrasoundGenerator>()});

  std::printf(
      "Sec. 4.1 / Eq. 1 — measurements and communication cost per frame\n");
  Table t({"signal", "N", "measured K", "Eq.1 M", "M/N", "ADC conv. saved",
           "scan cycles"});
  for (auto& s : sources) {
    Rng rng(7);
    // K averaged over 20 frames, the paper's significance threshold.
    double ksum = 0.0;
    std::size_t n = 0, cols = 0, rows = 0;
    for (int i = 0; i < 20; ++i) {
      const auto frame = s.gen->sample(rng).values;
      const la::Matrix coeffs = dsp::analyze(dsp::BasisKind::kDct2D, frame);
      ksum += static_cast<double>(dsp::significant_count(coeffs, 1e-4));
      n = coeffs.size();
      rows = frame.rows();
      cols = frame.cols();
    }
    const auto k = static_cast<std::size_t>(ksum / 20.0 + 0.5);
    const double m = cs::required_measurements(k, n);
    t.add_row({s.label, strformat("%zu", n), strformat("%zu", k),
               strformat("%.0f", m),
               strformat("%.2f", cs::communication_cost_ratio(
                                     static_cast<std::size_t>(m + 0.5), n)),
               strformat("%.0f", static_cast<double>(n) - m),
               strformat("%zu", cs::scan_cycles(rows, cols))});
  }
  std::printf("%s\n", t.to_text().c_str());

  // Eq. 1 sensitivity: M(K) for a 32x32 array.
  std::printf("Eq. 1 sensitivity — required M vs sparsity K (N = 1024)\n");
  Table sens({"K", "M = K log2(N/K)", "M/N"});
  for (std::size_t k : {32u, 64u, 128u, 256u, 512u}) {
    const double m = cs::required_measurements(k, 1024);
    sens.add_row({strformat("%zu", k), strformat("%.0f", m),
                  strformat("%.2f", m / 1024.0)});
  }
  std::printf("%s\n", sens.to_text().c_str());
}

void BM_RequiredMeasurements(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(cs::required_measurements(512, 1024));
  }
}
BENCHMARK(BM_RequiredMeasurements);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
