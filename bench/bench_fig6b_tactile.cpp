// Reproduces Fig. 6b: tactile-sensor object-recognition accuracy with and
// without compressed sensing, sweeping the sparse-error rate and the
// sampling percentage.
//
// Paper setup (Sec. 4.2): 26 objects, 32x32 tactile frames, ResNet with max
// pooling and dropout, Adam + categorical cross-entropy, lr reduced by 10x
// on plateau, best-validation weights kept. Paper headline: at ~10 % sparse
// errors, accuracy drops to 65 % without CS but reaches 84 % with CS.
//
// The classifier trains on the synthetic 26-class glove set at startup
// (several minutes on one core). Set FLEXCS_QUICK=1 to run a reduced
// 8-class version.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "cs/metrics.hpp"
#include "cs/pipeline.hpp"
#include "data/tactile.hpp"
#include "ml/trainer.hpp"
#include "solvers/solver.hpp"

namespace {

using namespace flexcs;

void print_tables() {
  const bool quick = std::getenv("FLEXCS_QUICK") != nullptr;
  const int num_classes = quick ? 8 : 26;
  const int train_per_class = quick ? 10 : 14;
  const int test_per_class = quick ? 4 : 5;
  const int epochs = quick ? 15 : 24;

  Rng rng(42);
  data::TactileGenerator generator;
  data::Dataset train, test;
  train.rows = test.rows = train.cols = test.cols = 32;
  train.num_classes = test.num_classes = num_classes;
  for (int c = 0; c < num_classes; ++c) {
    for (int i = 0; i < train_per_class; ++i)
      train.frames.push_back(generator.sample_class(c, rng));
    for (int i = 0; i < test_per_class; ++i)
      test.frames.push_back(generator.sample_class(c, rng));
  }

  std::printf("Fig. 6b — training the %d-class tactile classifier "
              "(%zu train / %zu test frames, %d epochs)...\n",
              num_classes, train.size(), test.size(), epochs);
  ml::Network net = ml::make_mini_resnet(32, num_classes, rng);
  ml::TrainOptions topts;
  topts.epochs = epochs;
  topts.adam.lr = 2e-3;
  topts.augment_defect_rate = 0.02;
  const ml::TrainResult tr = ml::train_classifier(net, train, test, topts, rng);
  std::printf("clean validation accuracy: %.3f\n\n", tr.best_val_accuracy);

  const cs::Encoder encoder;
  // Oracle-excluded measurements are clean, where the greedy OMP decoder
  // matches ADMM quality at half the cost — this evaluation runs hundreds
  // of decodes.
  const cs::Decoder decoder(32, 32, cs::DecoderOptions{},
                            solvers::make_solver("omp"));
  std::vector<int> labels;
  for (const auto& f : test.frames) labels.push_back(f.label);

  std::printf("Fig. 6b — classification accuracy vs sparse errors "
              "(CS at 50%% sampling)\n");
  Table t({"sparse errors", "no CS", "CS 50%"});
  const double samplings[] = {0.50};
  for (const double rate : {0.0, 0.05, 0.10, 0.20}) {
    Rng erng(777);
    std::vector<la::Matrix> corrupted;
    std::vector<cs::CorruptedFrame> cfs;
    for (const auto& f : test.frames) {
      cs::DefectOptions dopts;
      dopts.rate = rate;
      cfs.push_back(cs::inject_defects(f.values, dopts, erng));
      corrupted.push_back(cfs.back().values);
    }
    std::vector<std::string> row;
    row.push_back(strformat("%.0f%%", 100.0 * rate));
    row.push_back(strformat(
        "%.3f", ml::evaluate_frames(net, corrupted, labels).accuracy));
    for (const double sampling : samplings) {
      std::vector<la::Matrix> recon;
      for (const auto& cf : cfs)
        recon.push_back(
            cs::reconstruct_oracle(cf, sampling, encoder, decoder, erng));
      row.push_back(strformat(
          "%.3f", ml::evaluate_frames(net, recon, labels).accuracy));
    }
    t.add_row(row);
  }
  std::printf("%s", t.to_text().c_str());
  std::printf("paper headline: 10%% errors -> 65%% without CS, 84%% with "
              "CS (~20%% boost)\n\n");
}

void BM_ClassifierInference(benchmark::State& state) {
  Rng rng(1);
  ml::Network net = ml::make_mini_resnet(32, 26, rng);
  data::TactileGenerator gen;
  std::vector<la::Matrix> frames{gen.sample(rng).values};
  std::vector<int> labels{0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::evaluate_frames(net, frames, labels));
  }
}
BENCHMARK(BM_ClassifierInference)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
