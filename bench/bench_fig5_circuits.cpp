// Reproduces the encoder-hardware measurements of Fig. 5:
//
//   Fig. 5b — temperature-sensor pixel: linearity of current vs temperature
//             with the 500/25 um access TFT at VWL = 1 V;
//   Fig. 5c/d — 8-stage shift register at CLK 10 kHz / data 1 kHz, VDD 3 V
//             (gate level and transistor level);
//   Fig. 5e — self-biased amplifier: ~28 dB gain at 30 kHz from a 50 mV
//             input (our behavioural model: ~27 dB, ~1.1 V swing).
//
// Plus the compact-model extraction step of the design flow (Sec. 3.3).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "fe/amplifier.hpp"
#include "fe/sensor_array.hpp"
#include "fe/shift_register.hpp"
#include "fe/sim.hpp"

namespace {

using namespace flexcs;

void print_tables() {
  const fe::CellLibrary lib;

  // --- Sec. 3.3: compact-model parameter extraction.
  {
    Rng rng(3);
    fe::TftParams golden;
    golden.kp = 5.0e-5;
    golden.vth = -1.0;
    const auto iv = fe::synthesize_iv_sweep(golden, 0.02, rng);
    const fe::TftParams fit = fe::fit_tft_params(iv, fe::TftParams{});
    std::printf("Sec. 3.3 — CNT-TFT model extraction from wafer I-V data\n");
    Table t({"parameter", "golden", "extracted"});
    t.add_row({"kp (A/V^2)", strformat("%.2e", golden.kp),
               strformat("%.2e", fit.kp)});
    t.add_row({"vth (V)", strformat("%.2f", golden.vth),
               strformat("%.2f", fit.vth)});
    t.add_row({"fit RMS error", "-", strformat("%.3f",
                                               fe::iv_fit_error(fit, iv))});
    std::printf("%s\n", t.to_text().c_str());
  }

  // --- Fig. 5b: sensor pixel linearity.
  {
    fe::SensorArraySim array;
    std::printf("Fig. 5b — pixel current vs temperature (Pt sensor + "
                "500/25um access TFT, VWL = 1 V)\n");
    Table t({"T (C)", "I (uA)", "readback value"});
    for (double temp = 25.0; temp <= 40.01; temp += 3.0) {
      const double u = (temp - 25.0) / 15.0;
      const double i = array.pixel_current(u);
      t.add_row({strformat("%.0f", temp), strformat("%.2f", i * 1e6),
                 strformat("%.3f", array.current_to_value(i))});
    }
    std::printf("%s\n", t.to_text().c_str());
    // Linearity: max deviation of I(T) from the straight line through the
    // endpoints, as a fraction of the current span.
    const double i0 = array.pixel_current(0.0), i1 = array.pixel_current(1.0);
    double worst = 0.0;
    for (double u = 0.0; u <= 1.0001; u += 0.05) {
      const double ideal = i0 + u * (i1 - i0);
      worst = std::max(worst, std::fabs(array.pixel_current(u) - ideal) /
                                  std::fabs(i1 - i0));
    }
    std::printf("pixel nonlinearity: %.2f %% of span (paper: \"great "
                "linearity\")\n\n", 100.0 * worst);
  }

  // --- Fig. 5c/d: shift register.
  {
    std::printf("Fig. 5c/d — 8-stage shift register, CLK 10 kHz, VDD 3 V\n");
    fe::ShiftRegisterSpec spec;
    spec.data = {false, true, true, true, true, true, false, false};
    const fe::SrCheckResult gate = fe::check_shift_register_logic(spec, 1e-5);
    const fe::CellLibrary cells;
    const fe::SrCheckResult xtor =
        fe::check_shift_register_transistor(spec, cells);
    Table t({"level", "stages", "TFTs", "CLK (kHz)", "bits checked",
             "bit errors", "functional"});
    t.add_row({"gate (event-driven)", "8", "-", "10",
               strformat("%zu", gate.bits_checked),
               strformat("%zu", gate.bit_errors),
               gate.functional ? "yes" : "NO"});
    t.add_row({"transistor (MNA)", "8", strformat("%zu", xtor.tft_count),
               "10", strformat("%zu", xtor.bits_checked),
               strformat("%zu", xtor.bit_errors),
               xtor.functional ? "yes" : "NO"});
    std::printf("%s", t.to_text().c_str());
    std::printf("max functional CLK at 10 us cell delay (gate level): "
                "%.0f kHz\n\n",
                fe::max_functional_clock(8, 1e-5) / 1e3);
  }

  // --- Fig. 5e: amplifier.
  {
    std::printf("Fig. 5e — self-biased amplifier (9 TFTs, VDD 3 V, "
                "VSS -3 V, 50 mV input)\n");
    const fe::CellLibrary cells;
    Table t({"freq (kHz)", "gain (dB)", "output swing (V)"});
    for (double f : {10e3, 30e3, 60e3}) {
      fe::AmplifierSpec spec;
      spec.input_freq = f;
      const fe::AmplifierResult r = fe::measure_amplifier(spec, cells);
      t.add_row({strformat("%.0f", f / 1e3), strformat("%.1f", r.gain_db),
                 strformat("%.2f", r.output_amplitude)});
    }
    std::printf("%s", t.to_text().c_str());
    std::printf("paper operating point: 28 dB at 30 kHz, ~1.3 V swing\n\n");
  }
}

void BM_DcOperatingPoint_Inverter(benchmark::State& state) {
  fe::Circuit ckt;
  ckt.add_vsource("vdd", "0", fe::Waveform::make_dc(3.0));
  ckt.add_vsource("vss", "0", fe::Waveform::make_dc(-3.0));
  ckt.add_vsource("in", "0", fe::Waveform::make_dc(1.0));
  const fe::CellLibrary lib;
  lib.add_inverter(ckt, "in", "out", "u0");
  fe::Simulator sim(ckt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.dc_operating_point());
  }
}
BENCHMARK(BM_DcOperatingPoint_Inverter);

void BM_AmplifierTransient(benchmark::State& state) {
  const fe::CellLibrary lib;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fe::measure_amplifier(fe::AmplifierSpec{}, lib));
  }
}
BENCHMARK(BM_AmplifierTransient)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
