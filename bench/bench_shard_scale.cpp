// Sharded-decode scaling sweep: array size x shard count x batch depth
// through runtime::ShardedDecoder. Every cell decodes the same clean thermal
// frames; the monolithic baseline is the grid=1 cell (one tile covering the
// whole array, halo 0), so both arms run the identical solver configuration
// and the identical scatter/gather code path — the speedup measured here is
// the algorithmic tiling gain, not a code-path artefact.
//
// Why tiling wins on a single core: every solver iteration over the full
// frame costs O(M·N); splitting into T tiles divides both M and N by T, so
// the per-iteration cost drops ~T^2 while the tile count multiplies it back
// by only T. Batch depth > 1 stacks a second saving on top: same-position
// tiles of consecutive frames share one sampling pattern, so the measurement
// operator and its Lipschitz estimate are priced once per batch.
//
// The acceptance shape this bench exists to demonstrate: on a 128 x 128
// array at 4+ shards, frames/sec is >= 2.5x the monolithic baseline while
// the stitched RMSE stays in the monolithic quality regime (tiled decodes of
// smooth thermal fields land at-or-below the monolithic RMSE — the speedup
// is not bought with seams or quality loss).
//
// Usage:
//   bench_shard_scale [--smoke] [--json] [--out PATH]
//
//   --smoke   tiny configuration (32x32, two grids, two batch depths) used
//             by the ctest smoke registration; finishes in seconds.
//   --json    machine-readable output instead of the text table.
//   --out     record path override (see bench_util.hpp).
//
// JSON schema (--json): stdout carries exactly one JSON array; one object
// per (size, grid, batch depth) cell, all keys always present:
//   {
//     "rows":                   integer — array rows (= cols, square sweep)
//     "cols":                   integer
//     "tile":                   integer — tile side before halo padding
//     "halo":                   integer — replicated-border pixels per side
//     "shards":                 integer — tiles per frame (grid^2)
//     "batch_depth":            integer — frames a worker pops per dequeue
//     "workers":                integer — worker threads in the pool
//     "frames":                 integer — frames decoded in the cell
//     "decode_seconds":         number  — wall time of the whole batch
//                                         (construction excluded, both arms)
//     "frames_per_second":      number  — frames / decode_seconds
//     "speedup_vs_mono":        number  — frames_per_second over the same-
//                                         size grid=1, depth=1 baseline
//     "rmse":                   number  — mean stitched RMSE vs ground truth
//     "rmse_vs_mono":           number  — rmse / monolithic baseline rmse
//     "tiles_accepted":         integer — tiles whose sanity check passed
//     "tiles_total":            integer — shards x frames
//     "decode_calls":           integer — solver runs summed over tiles
//     "mean_solver_iterations": number  — mean FISTA iterations per tile
//   }
//
// Full (non-smoke) --json runs additionally record the same array to
// BENCH_shard_scale.json at the repository root; smoke runs never touch
// that file so the ctest registration cannot overwrite a recorded sweep.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "cs/metrics.hpp"
#include "data/thermal.hpp"
#include "runtime/shard.hpp"
#include "solvers/fista.hpp"

namespace {

using namespace flexcs;

struct SweepConfig {
  std::vector<std::size_t> dims = {64, 128};
  // Tiles per side; shards = grid^2. grid 1 is the monolithic baseline and
  // runs halo 0 (a halo around the only tile would pad pure replication).
  std::vector<std::size_t> grids = {1, 2, 4};
  std::vector<std::size_t> batch_depths = {1, 4};
  std::size_t halo = 2;  // sharded cells only
  std::size_t workers = 2;
  std::size_t queue_capacity = 32;
  std::size_t frames = 4;
  // Both arms run the identical FISTA configuration and converge by
  // tolerance well inside the cap (probed: 49 iterations monolithic 128,
  // 60-70 per 64-pixel tile), so neither arm is iteration-starved.
  int fista_iterations = 400;
  double fista_tol = 1e-6;
};

SweepConfig smoke_config() {
  SweepConfig cfg;
  cfg.dims = {32};
  cfg.grids = {1, 2};
  cfg.batch_depths = {1, 2};
  cfg.frames = 2;
  return cfg;
}

struct ScaleCell {
  std::size_t dim = 0;
  std::size_t tile = 0;
  std::size_t halo = 0;
  std::size_t shards = 0;
  std::size_t batch_depth = 0;
  std::size_t workers = 0;
  std::size_t frames = 0;
  double decode_seconds = 0.0;
  double frames_per_second = 0.0;
  double speedup_vs_mono = 0.0;  // filled once the baseline cell is known
  double rmse = 0.0;
  double rmse_vs_mono = 0.0;
  std::size_t tiles_accepted = 0;
  std::size_t tiles_total = 0;
  int decode_calls = 0;
  double mean_solver_iterations = 0.0;
};

ScaleCell run_cell(const SweepConfig& cfg, std::size_t dim, std::size_t grid,
                   std::size_t depth) {
  ScaleCell cell;
  cell.dim = dim;
  cell.tile = dim / grid;
  cell.halo = grid == 1 ? 0 : cfg.halo;
  cell.shards = grid * grid;
  cell.batch_depth = depth;
  cell.workers = cfg.workers;
  cell.frames = cfg.frames;

  solvers::FistaOptions fopts;
  fopts.max_iterations = cfg.fista_iterations;
  fopts.tol = cfg.fista_tol;

  runtime::ShardOptions opts;
  opts.tile_rows = opts.tile_cols = cell.tile;
  opts.halo = cell.halo;
  opts.stream.workers = cfg.workers;
  opts.stream.queue_capacity = cfg.queue_capacity;
  opts.stream.batch_depth = depth;
  opts.stream.solver = std::make_shared<solvers::FistaSolver>(fopts);
  // Throughput is the subject: clean frames, plain decode only, no debias
  // re-fit. Identical settings in every cell, so cells compare fairly.
  opts.stream.pipeline.max_rung = runtime::Strategy::kPlainDecode;
  opts.stream.pipeline.decoder.debias = false;
  opts.stream.seed = 0xa11d;

  // Construction (Psi build, worker spawn) is excluded from the timing in
  // both arms: it is a once-per-geometry cost, not a per-frame one.
  runtime::ShardedDecoder sharded(dim, dim, opts);

  data::ThermalOptions topts;
  topts.rows = topts.cols = dim;
  const data::ThermalHandGenerator gen(topts);
  std::vector<la::Matrix> truths;
  for (std::size_t f = 0; f < cfg.frames; ++f) {
    Rng rng(100 + f);
    truths.push_back(gen.sample(rng).values);
  }

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<runtime::ShardFrameResult> results =
      sharded.process_batch(truths);
  const auto t1 = std::chrono::steady_clock::now();
  cell.decode_seconds = std::chrono::duration<double>(t1 - t0).count();
  cell.frames_per_second =
      static_cast<double>(cfg.frames) / cell.decode_seconds;

  std::size_t tile_count = 0;
  for (std::size_t f = 0; f < results.size(); ++f) {
    const runtime::ShardReport& r = results[f].report;
    cell.rmse += cs::rmse(results[f].frame, truths[f]);
    cell.tiles_accepted += r.tiles_accepted;
    cell.tiles_total += r.tiles;
    cell.decode_calls += r.decode_calls;
    for (const runtime::TileReport& t : r.tile_reports) {
      cell.mean_solver_iterations += t.report.solver_iterations;
      ++tile_count;
    }
  }
  cell.rmse /= static_cast<double>(cfg.frames);
  if (tile_count > 0)
    cell.mean_solver_iterations /= static_cast<double>(tile_count);
  return cell;
}

// Normalises every cell against its size's monolithic (grid=1, depth=1)
// baseline. The baseline cell reports 1.0 for both ratios by construction.
void fill_baselines(std::vector<ScaleCell>& cells) {
  for (ScaleCell& c : cells) {
    for (const ScaleCell& base : cells) {
      if (base.dim == c.dim && base.shards == 1 && base.batch_depth == 1) {
        c.speedup_vs_mono = c.frames_per_second / base.frames_per_second;
        c.rmse_vs_mono = base.rmse > 0.0 ? c.rmse / base.rmse : 0.0;
        break;
      }
    }
  }
}

std::string to_json(const std::vector<ScaleCell>& cells) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ScaleCell& c = cells[i];
    out += strformat(
        "  {\"rows\": %zu, \"cols\": %zu, \"tile\": %zu, \"halo\": %zu, "
        "\"shards\": %zu, \"batch_depth\": %zu, \"workers\": %zu, "
        "\"frames\": %zu, \"decode_seconds\": %.4f, "
        "\"frames_per_second\": %.4f, \"speedup_vs_mono\": %.3f, "
        "\"rmse\": %.6f, \"rmse_vs_mono\": %.3f, \"tiles_accepted\": %zu, "
        "\"tiles_total\": %zu, \"decode_calls\": %d, "
        "\"mean_solver_iterations\": %.1f}%s\n",
        c.dim, c.dim, c.tile, c.halo, c.shards, c.batch_depth,
        c.workers, c.frames, c.decode_seconds, c.frames_per_second,
        c.speedup_vs_mono, c.rmse, c.rmse_vs_mono, c.tiles_accepted,
        c.tiles_total, c.decode_calls, c.mean_solver_iterations,
        i + 1 < cells.size() ? "," : "");
  }
  out += "]\n";
  return out;
}

void print_table(const std::vector<ScaleCell>& cells, const SweepConfig& cfg) {
  std::printf(
      "Sharded decode scaling — ShardedDecoder, %zu workers, %zu frames "
      "per cell, FISTA tol %.0e\n",
      cfg.workers, cfg.frames, cfg.fista_tol);
  Table t({"size", "tile", "halo", "shards", "batch", "sec", "fps",
           "speedup", "rmse", "rmse/mono", "iters"});
  for (const ScaleCell& c : cells) {
    t.add_row({strformat("%zu", c.dim), strformat("%zu", c.tile),
               strformat("%zu", c.halo), strformat("%zu", c.shards),
               strformat("%zu", c.batch_depth),
               strformat("%.2f", c.decode_seconds),
               strformat("%.3f", c.frames_per_second),
               strformat("%.2fx", c.speedup_vs_mono),
               strformat("%.4f", c.rmse),
               strformat("%.2f", c.rmse_vs_mono),
               strformat("%.0f", c.mean_solver_iterations)});
  }
  std::printf("%s", t.to_text().c_str());
  std::printf(
      "shape: at 128x128 the 4+ shard cells deliver >= 2.5x the monolithic "
      "frames/sec with rmse at-or-below the monolithic baseline\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  if (!args.ok) {
    bench::print_bench_usage(argv[0]);
    return 2;
  }
  const SweepConfig cfg = args.smoke ? smoke_config() : SweepConfig{};

  std::vector<ScaleCell> cells;
  for (const std::size_t dim : cfg.dims)
    for (const std::size_t grid : cfg.grids)
      for (const std::size_t depth : cfg.batch_depths)
        cells.push_back(run_cell(cfg, dim, grid, depth));
  fill_baselines(cells);

  if (args.json) {
    const std::string out = to_json(cells);
    std::fputs(out.c_str(), stdout);
    if (bench::should_record(args))
      bench::record_json(out, bench::record_path(
          args, FLEXCS_SOURCE_DIR "/BENCH_shard_scale.json"));
  } else {
    print_table(cells, cfg);
  }
  return 0;
}
