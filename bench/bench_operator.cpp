// Dense vs matrix-free measurement-operator sweep through cs::Decoder, plus
// a per-apply transform microbenchmark.
//
// Decode sweep: both arms decode the same thermal frame from the same
// sampling pattern with the same FISTA configuration; the only difference is
// the operator representation — dense A = Φ_M·Ψ (N x N Ψ materialised,
// M x N selection cached) versus the implicit SubsampledTransformOperator
// (FFT-based 1-D DCT plans / in-place Haar lifting, gather/scatter per
// apply).
//
// Operator memory: the dense figure is analytic (exact and platform
// independent, computable even for sizes whose dense arm never runs):
//   dense:    8 * (N² + M·N) bytes   (Ψ plus the cached measurement matrix)
// The implicit figure is the operator's own cached_state_bytes() — the DCT
// plan tables (bit-reversal + twiddles, O(rows + cols)); Haar caches
// nothing. Per-apply scratch is O(N) and thread-local.
//
// Per-apply microbench (the `per_apply_*` sections): for each 1-D length,
// one DCT-II and one DCT-III pass through three kernels — the naive O(n²)
// cosine-sum (dsp::dct1d/idct1d, the golden reference), the cached dense
// factor matvec (the pre-plan implicit kernel), and the Makhoul FFT plan
// (dsp::Dct1dPlan) — with per-call wall time, speedups, and the max
// fast-vs-naive error. For each grid size and basis, the measured per-apply
// / per-adjoint cost of the full SubsampledTransformOperator via its own
// ApplyStats metering.
//
// Usage:
//   bench_operator [--smoke] [--json] [--out PATH] [--micro]
//
//   --smoke   tiny configuration (16x16) used by the ctest smoke
//             registrations; finishes in well under a second.
//   --json    machine-readable output instead of the text tables.
//   --micro   per-apply microbenchmark only (skips the decode sweep; never
//             records to the default BENCH_operator.json path, so a partial
//             run cannot clobber a recorded full sweep).
//
// JSON schema (--json): stdout carries exactly one JSON object:
//   {
//     "decode": [            // one object per (size, mode) decode cell
//       {
//         "rows":                integer — array rows (= cols, square sweep)
//         "cols":                integer
//         "mode":                string  — "dense" | "implicit"
//         "m":                   integer — measurements (pattern size)
//         "n":                   integer — pixels (rows * cols)
//         "fraction":            number  — m / n
//         "build_seconds":       number  — decoder construction + operator
//                                          cache fill + spectral warm-up
//         "decode_seconds":      number  — the decode call alone
//         "iterations":          integer — solver iterations
//         "converged":           boolean
//         "rmse":                number  — reconstruction RMSE vs truth
//         "residual_norm":       number  — ||A x - y||_2 at the solution
//         "operator_bytes":      integer — operator memory (above)
//         "mem_ratio_vs_dense":  number  — analytic dense bytes / this
//                                          cell's bytes (1.0 for dense)
//         "rmse_delta_vs_dense": number or null — |rmse - dense-arm rmse|;
//                                          null when the size has no dense
//                                          arm to compare (no sentinels)
//       }, ...
//     ],
//     "per_apply_1d": [      // one object per (length, DCT direction)
//       {
//         "n":                  integer — 1-D transform length
//         "kind":               string  — "dct2" (forward) | "dct3"
//         "naive_ms":           number  — per-call ms, O(n²) cosine sum
//         "factor_ms":          number  — per-call ms, dense factor matvec
//         "fast_ms":            number  — per-call ms, FFT plan
//         "speedup_vs_naive":   number  — naive_ms / fast_ms
//         "speedup_vs_factor":  number  — factor_ms / fast_ms
//         "max_abs_err":        number  — max |fast - naive| on one input
//       }, ...
//     ],
//     "per_apply_operator": [ // one object per (grid size, basis)
//       {
//         "dim":        integer — square grid dimension
//         "basis":      string  — "dct2d" | "haar2d"
//         "m":          integer — measurements (pattern size)
//         "apply_ms":   number  — per-apply ms (operator's ApplyStats)
//         "adjoint_ms": number  — per-adjoint ms
//         "reps":       integer — timed repetitions per direction
//       }, ...
//     ]
//   }
// A --micro run emits the same object with "decode": [].
//
// Full (non-smoke, non-micro) --json runs additionally record the object to
// BENCH_operator.json at the repository root; smoke runs never touch that
// file so the ctest registrations cannot overwrite a recorded sweep.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "cs/decoder.hpp"
#include "cs/metrics.hpp"
#include "cs/sampling.hpp"
#include "data/thermal.hpp"
#include "dsp/dct.hpp"
#include "dsp/fft.hpp"
#include "la/matrix.hpp"
#include "solvers/fista.hpp"

namespace {

using namespace flexcs;

struct SweepConfig {
  // Sizes that run both arms, and sizes that run implicit-only (the dense
  // arm is priced analytically there — the point is that it never runs).
  std::vector<std::size_t> both_dims = {32, 64, 128};
  std::vector<std::size_t> implicit_only_dims = {256};
  // Per-apply microbench sizes: 1-D lengths and square grid dims.
  std::vector<std::size_t> micro_dims = {32, 64, 128, 256};
  double fraction = 0.3;
  // Tight tolerance: the equal-RMSE gate compares the two arms at 1e-6, so
  // both must converge well past the comparison threshold.
  int fista_iterations = 4000;
  double fista_tol = 1e-8;
};

SweepConfig smoke_config() {
  SweepConfig cfg;
  cfg.both_dims = {16};
  cfg.implicit_only_dims = {};
  cfg.micro_dims = {16};
  cfg.fraction = 0.4;
  cfg.fista_iterations = 1000;
  cfg.fista_tol = 1e-7;
  return cfg;
}

struct OperatorCell {
  std::size_t dim = 0;
  bool implicit = false;
  std::size_t m = 0;
  std::size_t n = 0;
  double build_seconds = 0.0;
  double decode_seconds = 0.0;
  int iterations = 0;
  bool converged = false;
  double rmse = 0.0;
  double residual_norm = 0.0;
  std::size_t operator_bytes = 0;
  double mem_ratio_vs_dense = 1.0;
  bool has_dense_delta = false;  // false: no dense arm at this size
  double rmse_delta_vs_dense = 0.0;
};

std::size_t dense_operator_bytes(std::size_t n, std::size_t m) {
  return 8 * (n * n + m * n);
}

OperatorCell run_cell(const SweepConfig& cfg, std::size_t dim, bool implicit) {
  OperatorCell cell;
  cell.dim = dim;
  cell.implicit = implicit;

  // Same pattern, frame, and measurements in both arms at a given size:
  // seeds depend only on the size, never on the mode.
  Rng pattern_rng(0x0b5e + dim);
  const cs::SamplingPattern p =
      cs::random_pattern(dim, dim, cfg.fraction, pattern_rng);
  cell.m = p.m();
  cell.n = p.n();

  data::ThermalOptions topts;
  topts.rows = topts.cols = dim;
  Rng frame_rng(100 + dim);
  const la::Matrix truth = data::ThermalHandGenerator(topts).sample(frame_rng).values;
  const la::Vector y = cs::apply_pattern(p, truth.flatten());

  solvers::FistaOptions fopts;
  fopts.max_iterations = cfg.fista_iterations;
  fopts.tol = cfg.fista_tol;

  cs::DecoderOptions dopts;
  dopts.implicit_psi = implicit;
  // Plain decode only: no debias re-fit, no clamp, so the recorded RMSE is
  // the solver's own solution quality and the two arms compare exactly.
  dopts.debias = false;
  dopts.clamp01 = false;

  // Build phase: decoder construction (dense mode pays the N x N Ψ here),
  // operator cache fill, and the spectral-norm warm-up that decode reuses
  // as the Lipschitz hint. Once-per-geometry cost, separated from decode.
  const auto b0 = std::chrono::steady_clock::now();
  const cs::Decoder decoder(dim, dim, dopts,
                            std::make_shared<solvers::FistaSolver>(fopts));
  decoder.operator_norm(p);
  const auto b1 = std::chrono::steady_clock::now();
  cell.build_seconds = std::chrono::duration<double>(b1 - b0).count();

  // Implicit cells report the operator's measured cached state (DCT plan
  // tables); dense cells their analytic footprint.
  cell.operator_bytes = implicit
                            ? decoder.implicit_operator(p)->cached_state_bytes()
                            : dense_operator_bytes(cell.n, cell.m);
  cell.mem_ratio_vs_dense =
      static_cast<double>(dense_operator_bytes(cell.n, cell.m)) /
      static_cast<double>(std::max<std::size_t>(1, cell.operator_bytes));

  const auto t0 = std::chrono::steady_clock::now();
  const cs::DecodeResult res = decoder.decode(p, y);
  const auto t1 = std::chrono::steady_clock::now();
  cell.decode_seconds = std::chrono::duration<double>(t1 - t0).count();
  cell.iterations = res.solver_iterations;
  cell.converged = res.converged;
  cell.residual_norm = res.residual_norm;
  cell.rmse = cs::rmse(res.frame, truth);
  return cell;
}

// Fills rmse_delta_vs_dense for every cell whose size also ran the dense
// arm; dense cells compare against themselves (delta 0 by definition).
// Sizes without a dense arm keep has_dense_delta == false (JSON null).
void fill_deltas(std::vector<OperatorCell>& cells) {
  for (OperatorCell& c : cells) {
    for (const OperatorCell& base : cells) {
      if (base.dim == c.dim && !base.implicit) {
        c.has_dense_delta = true;
        c.rmse_delta_vs_dense = std::fabs(c.rmse - base.rmse);
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Per-apply microbenchmark.
// ---------------------------------------------------------------------------

struct Micro1dCell {
  std::size_t n = 0;
  bool forward = true;  // DCT-II; false: DCT-III
  double naive_ms = 0.0;
  double factor_ms = 0.0;
  double fast_ms = 0.0;
  double max_abs_err = 0.0;
};

struct MicroOpCell {
  std::size_t dim = 0;
  dsp::BasisKind basis = dsp::BasisKind::kDct2D;
  std::size_t m = 0;
  double apply_ms = 0.0;
  double adjoint_ms = 0.0;
  int reps = 0;
};

// Keeps the timed kernels observable so the optimiser cannot drop them.
volatile double g_sink = 0.0;

template <typename F>
double time_ms_per_call(int reps, F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  double sum = 0.0;
  for (int r = 0; r < reps; ++r) sum += f();
  const auto t1 = std::chrono::steady_clock::now();
  g_sink = g_sink + sum;
  return std::chrono::duration<double, std::milli>(t1 - t0).count() /
         static_cast<double>(reps);
}

std::vector<Micro1dCell> run_micro_1d(const SweepConfig& cfg) {
  std::vector<Micro1dCell> cells;
  for (const std::size_t n : cfg.micro_dims) {
    Rng rng(0xd0c7 + n);
    la::Vector x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = rng.uniform() - 0.5;

    const dsp::Dct1dPlan plan(n);
    dsp::DctWorkspace ws;
    const la::Matrix factor = dsp::dct_matrix(n);
    la::Vector out(n);

    // The naive cosine-sum recomputes cos() per element, so it gets fewer
    // repetitions than the table-driven kernels at the same length.
    const int reps_naive =
        static_cast<int>(std::max<std::size_t>(5, 20000 / n));
    const int reps_fast =
        static_cast<int>(std::max<std::size_t>(200, 200000 / n));

    for (const bool forward : {true, false}) {
      Micro1dCell c;
      c.n = n;
      c.forward = forward;
      c.naive_ms = time_ms_per_call(reps_naive, [&] {
        out = forward ? dsp::dct1d(x) : dsp::idct1d(x);
        return out[0];
      });
      c.factor_ms = time_ms_per_call(reps_fast, [&] {
        // DCT-II is factor · x; DCT-III (the inverse) is factorᵀ · x.
        out = forward ? la::matvec(factor, x) : la::matvec_t(factor, x);
        return out[0];
      });
      c.fast_ms = time_ms_per_call(reps_fast, [&] {
        if (forward)
          plan.forward(x.data(), out.data(), ws);
        else
          plan.inverse(x.data(), out.data(), ws);
        return out[0];
      });
      const la::Vector ref = forward ? dsp::dct1d(x) : dsp::idct1d(x);
      la::Vector fast(n);
      if (forward)
        plan.forward(x.data(), fast.data(), ws);
      else
        plan.inverse(x.data(), fast.data(), ws);
      for (std::size_t i = 0; i < n; ++i)
        c.max_abs_err = std::max(c.max_abs_err, std::fabs(fast[i] - ref[i]));
      cells.push_back(c);
    }
  }
  return cells;
}

std::vector<MicroOpCell> run_micro_operator(const SweepConfig& cfg) {
  std::vector<MicroOpCell> cells;
  for (const std::size_t dim : cfg.micro_dims) {
    Rng pattern_rng(0x0b5e + dim);
    const cs::SamplingPattern p =
        cs::random_pattern(dim, dim, cfg.fraction, pattern_rng);
    for (const dsp::BasisKind basis :
         {dsp::BasisKind::kDct2D, dsp::BasisKind::kHaar2D}) {
      const cs::SubsampledTransformOperator op(basis, p);
      Rng rng(0xa991 + dim);
      la::Vector x(op.cols());
      for (std::size_t i = 0; i < x.size(); ++i) x[i] = rng.uniform() - 0.5;
      la::Vector y(op.rows());
      for (std::size_t i = 0; i < y.size(); ++i) y[i] = rng.uniform() - 0.5;

      MicroOpCell c;
      c.dim = dim;
      c.basis = basis;
      c.m = p.m();
      c.reps = static_cast<int>(std::max<std::size_t>(10, 20000 / dim));
      // Warm the thread-local scratch so the first-apply allocation is not
      // billed to the steady-state per-apply figure.
      g_sink = g_sink + op.apply(x)[0] + op.apply_adjoint(y)[0];

      const auto s0 = op.apply_stats();
      for (int r = 0; r < c.reps; ++r) g_sink = g_sink + op.apply(x)[0];
      for (int r = 0; r < c.reps; ++r)
        g_sink = g_sink + op.apply_adjoint(y)[0];
      const auto s1 = op.apply_stats();
      c.apply_ms = (s1.apply_seconds - s0.apply_seconds) * 1e3 /
                   static_cast<double>(s1.applies - s0.applies);
      c.adjoint_ms = (s1.adjoint_seconds - s0.adjoint_seconds) * 1e3 /
                     static_cast<double>(s1.adjoints - s0.adjoints);
      cells.push_back(c);
    }
  }
  return cells;
}

// ---------------------------------------------------------------------------
// Output.
// ---------------------------------------------------------------------------

std::string to_json(const std::vector<OperatorCell>& cells,
                    const std::vector<Micro1dCell>& micro1d,
                    const std::vector<MicroOpCell>& microop) {
  std::string out = "{\n\"decode\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const OperatorCell& c = cells[i];
    const std::string delta =
        c.has_dense_delta ? strformat("%.3e", c.rmse_delta_vs_dense)
                          : std::string("null");
    out += strformat(
        "  {\"rows\": %zu, \"cols\": %zu, \"mode\": \"%s\", \"m\": %zu, "
        "\"n\": %zu, \"fraction\": %.4f, \"build_seconds\": %.4f, "
        "\"decode_seconds\": %.4f, \"iterations\": %d, \"converged\": %s, "
        "\"rmse\": %.9f, \"residual_norm\": %.3e, \"operator_bytes\": %zu, "
        "\"mem_ratio_vs_dense\": %.1f, \"rmse_delta_vs_dense\": %s}%s\n",
        c.dim, c.dim, c.implicit ? "implicit" : "dense", c.m, c.n,
        static_cast<double>(c.m) / static_cast<double>(c.n), c.build_seconds,
        c.decode_seconds, c.iterations, c.converged ? "true" : "false",
        c.rmse, c.residual_norm, c.operator_bytes, c.mem_ratio_vs_dense,
        delta.c_str(), i + 1 < cells.size() ? "," : "");
  }
  out += "],\n\"per_apply_1d\": [\n";
  for (std::size_t i = 0; i < micro1d.size(); ++i) {
    const Micro1dCell& c = micro1d[i];
    out += strformat(
        "  {\"n\": %zu, \"kind\": \"%s\", \"naive_ms\": %.6f, "
        "\"factor_ms\": %.6f, \"fast_ms\": %.6f, "
        "\"speedup_vs_naive\": %.1f, \"speedup_vs_factor\": %.1f, "
        "\"max_abs_err\": %.3e}%s\n",
        c.n, c.forward ? "dct2" : "dct3", c.naive_ms, c.factor_ms, c.fast_ms,
        c.naive_ms / c.fast_ms, c.factor_ms / c.fast_ms, c.max_abs_err,
        i + 1 < micro1d.size() ? "," : "");
  }
  out += "],\n\"per_apply_operator\": [\n";
  for (std::size_t i = 0; i < microop.size(); ++i) {
    const MicroOpCell& c = microop[i];
    out += strformat(
        "  {\"dim\": %zu, \"basis\": \"%s\", \"m\": %zu, "
        "\"apply_ms\": %.4f, \"adjoint_ms\": %.4f, \"reps\": %d}%s\n",
        c.dim, c.basis == dsp::BasisKind::kDct2D ? "dct2d" : "haar2d", c.m,
        c.apply_ms, c.adjoint_ms, c.reps,
        i + 1 < microop.size() ? "," : "");
  }
  out += "]\n}\n";
  return out;
}

std::string human_bytes(std::size_t bytes) {
  if (bytes >= (std::size_t{1} << 30))
    return strformat("%.1f GB", static_cast<double>(bytes) / (1 << 30));
  if (bytes >= (std::size_t{1} << 20))
    return strformat("%.1f MB", static_cast<double>(bytes) / (1 << 20));
  return strformat("%.1f KB", static_cast<double>(bytes) / (1 << 10));
}

void print_decode_table(const std::vector<OperatorCell>& cells,
                        const SweepConfig& cfg) {
  std::printf(
      "Dense vs matrix-free measurement operator — cs::Decoder, FISTA "
      "tol %.0e, sampling fraction %.2f\n",
      cfg.fista_tol, cfg.fraction);
  Table t({"size", "mode", "m", "build s", "decode s", "iters", "rmse",
           "op mem", "mem ratio", "|Δrmse|"});
  for (const OperatorCell& c : cells) {
    t.add_row({strformat("%zu", c.dim), c.implicit ? "implicit" : "dense",
               strformat("%zu", c.m), strformat("%.2f", c.build_seconds),
               strformat("%.2f", c.decode_seconds),
               strformat("%d", c.iterations), strformat("%.6f", c.rmse),
               human_bytes(c.operator_bytes),
               strformat("%.0fx", c.mem_ratio_vs_dense),
               c.has_dense_delta ? strformat("%.1e", c.rmse_delta_vs_dense)
                                 : std::string("n/a")});
  }
  std::printf("%s", t.to_text().c_str());
  std::printf(
      "shape: at 128x128 the implicit decode matches the dense rmse within "
      "1e-6 at >= 10x lower operator memory; 256x256 decodes implicit-only "
      "(dense would need %s)\n",
      human_bytes(dense_operator_bytes(256 * 256,
                                       static_cast<std::size_t>(
                                           cfg.fraction * 256 * 256)))
          .c_str());
}

void print_micro_tables(const std::vector<Micro1dCell>& micro1d,
                        const std::vector<MicroOpCell>& microop) {
  std::printf(
      "\nPer-apply 1-D DCT kernels — naive cosine sum vs cached dense "
      "factor vs FFT plan (per-call ms)\n");
  Table t1({"n", "kind", "naive ms", "factor ms", "fast ms", "vs naive",
            "vs factor", "max err"});
  for (const Micro1dCell& c : micro1d) {
    t1.add_row({strformat("%zu", c.n), c.forward ? "dct2" : "dct3",
                strformat("%.6f", c.naive_ms), strformat("%.6f", c.factor_ms),
                strformat("%.6f", c.fast_ms),
                strformat("%.1fx", c.naive_ms / c.fast_ms),
                strformat("%.1fx", c.factor_ms / c.fast_ms),
                strformat("%.1e", c.max_abs_err)});
  }
  std::printf("%s", t1.to_text().c_str());

  std::printf(
      "\nPer-apply measurement operator — SubsampledTransformOperator "
      "ApplyStats (per-call ms)\n");
  Table t2({"dim", "basis", "m", "apply ms", "adjoint ms", "reps"});
  for (const MicroOpCell& c : microop) {
    t2.add_row({strformat("%zu", c.dim),
                c.basis == dsp::BasisKind::kDct2D ? "dct2d" : "haar2d",
                strformat("%zu", c.m), strformat("%.4f", c.apply_ms),
                strformat("%.4f", c.adjoint_ms), strformat("%d", c.reps)});
  }
  std::printf("%s", t2.to_text().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // --micro is local to this bench: strip it before the shared parser (which
  // rejects unknown flags).
  bool micro_only = false;
  std::vector<char*> filtered;
  filtered.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--micro") == 0)
      micro_only = true;
    else
      filtered.push_back(argv[i]);
  }
  const bench::BenchArgs args =
      bench::parse_bench_args(static_cast<int>(filtered.size()),
                              filtered.data());
  if (!args.ok) {
    std::fprintf(stderr,
                 "usage: %s [--smoke] [--json] [--out PATH] [--micro]\n",
                 argv[0]);
    return 2;
  }
  const SweepConfig cfg = args.smoke ? smoke_config() : SweepConfig{};

  std::vector<OperatorCell> cells;
  if (!micro_only) {
    for (const std::size_t dim : cfg.both_dims) {
      cells.push_back(run_cell(cfg, dim, /*implicit=*/false));
      cells.push_back(run_cell(cfg, dim, /*implicit=*/true));
    }
    for (const std::size_t dim : cfg.implicit_only_dims)
      cells.push_back(run_cell(cfg, dim, /*implicit=*/true));
    fill_deltas(cells);
  }
  const std::vector<Micro1dCell> micro1d = run_micro_1d(cfg);
  const std::vector<MicroOpCell> microop = run_micro_operator(cfg);

  if (args.json) {
    const std::string out = to_json(cells, micro1d, microop);
    std::fputs(out.c_str(), stdout);
    // A micro-only run carries an empty decode section; recording it to the
    // default path would clobber a recorded full sweep, so it only records
    // under an explicit --out.
    if (bench::should_record(args) && (!micro_only || !args.out.empty()))
      bench::record_json(out, bench::record_path(
          args, FLEXCS_SOURCE_DIR "/BENCH_operator.json"));
  } else {
    if (!micro_only) print_decode_table(cells, cfg);
    print_micro_tables(micro1d, microop);
  }
  return 0;
}
