// Dense vs matrix-free measurement-operator sweep through cs::Decoder.
// Both arms decode the same thermal frame from the same sampling pattern
// with the same FISTA configuration; the only difference is the operator
// representation — dense A = Φ_M·Ψ (N x N Ψ materialised, M x N selection
// cached) versus the implicit SubsampledTransformOperator (two 1-D DCT
// factors, O(rows² + cols²) state, gather/scatter per apply).
//
// Operator memory is reported analytically rather than via an allocator
// hook so the number is exact and platform-independent:
//   dense:    8 * (N² + M·N) bytes   (Ψ plus the cached measurement matrix)
//   implicit: 8 * (rows² + cols²)    (cached 1-D DCT factors; per-apply
//                                     scratch is O(N) and transient)
// The dense figure is computable for every size, so implicit-only cells
// (sizes whose dense arm would not fit a reasonable budget) still report
// their memory ratio against the dense operator they avoided building.
//
// The acceptance shape this bench exists to demonstrate: at 128 x 128 the
// implicit decode reaches the dense arm's RMSE within 1e-6 with >= 10x less
// operator memory, and a 256 x 256 monolithic decode — whose dense Ψ alone
// would be ~34 GB — completes implicit-only.
//
// Usage:
//   bench_operator [--smoke] [--json] [--out PATH]
//
//   --smoke   tiny configuration (16x16, both arms) used by the ctest smoke
//             registration; finishes in well under a second.
//   --json    machine-readable output instead of the text table.
//
// JSON schema (--json): stdout carries exactly one JSON array; one object
// per (size, mode) cell, all keys always present:
//   {
//     "rows":                integer — array rows (= cols, square sweep)
//     "cols":                integer
//     "mode":                string  — "dense" | "implicit"
//     "m":                   integer — measurements (pattern size)
//     "n":                   integer — pixels (rows * cols)
//     "fraction":            number  — m / n
//     "build_seconds":       number  — decoder construction + operator cache
//                                      fill + spectral-norm warm-up
//     "decode_seconds":      number  — the decode call alone
//     "iterations":          integer — solver iterations
//     "converged":           boolean
//     "rmse":                number  — reconstruction RMSE vs ground truth
//     "residual_norm":       number  — ||A x - y||_2 at the solution
//     "operator_bytes":      integer — analytic operator memory (above)
//     "mem_ratio_vs_dense":  number  — analytic dense bytes / this cell's
//                                      bytes (1.0 for dense cells)
//     "rmse_delta_vs_dense": number  — |rmse - dense-arm rmse|; -1.0 when
//                                      the size has no dense arm to compare
//   }
//
// Full (non-smoke) --json runs additionally record the same array to
// BENCH_operator.json at the repository root; smoke runs never touch that
// file so the ctest registration cannot overwrite a recorded sweep.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "cs/decoder.hpp"
#include "cs/metrics.hpp"
#include "cs/sampling.hpp"
#include "data/thermal.hpp"
#include "solvers/fista.hpp"

namespace {

using namespace flexcs;

struct SweepConfig {
  // Sizes that run both arms, and sizes that run implicit-only (the dense
  // arm is priced analytically there — the point is that it never runs).
  std::vector<std::size_t> both_dims = {32, 64, 128};
  std::vector<std::size_t> implicit_only_dims = {256};
  double fraction = 0.3;
  // Tight tolerance: the equal-RMSE gate compares the two arms at 1e-6, so
  // both must converge well past the comparison threshold.
  int fista_iterations = 4000;
  double fista_tol = 1e-8;
};

SweepConfig smoke_config() {
  SweepConfig cfg;
  cfg.both_dims = {16};
  cfg.implicit_only_dims = {};
  cfg.fraction = 0.4;
  cfg.fista_iterations = 1000;
  cfg.fista_tol = 1e-7;
  return cfg;
}

struct OperatorCell {
  std::size_t dim = 0;
  bool implicit = false;
  std::size_t m = 0;
  std::size_t n = 0;
  double build_seconds = 0.0;
  double decode_seconds = 0.0;
  int iterations = 0;
  bool converged = false;
  double rmse = 0.0;
  double residual_norm = 0.0;
  std::size_t operator_bytes = 0;
  double mem_ratio_vs_dense = 1.0;
  double rmse_delta_vs_dense = -1.0;  // -1: no dense arm at this size
};

std::size_t dense_operator_bytes(std::size_t n, std::size_t m) {
  return 8 * (n * n + m * n);
}

std::size_t implicit_operator_bytes(std::size_t rows, std::size_t cols) {
  return 8 * (rows * rows + cols * cols);
}

OperatorCell run_cell(const SweepConfig& cfg, std::size_t dim, bool implicit) {
  OperatorCell cell;
  cell.dim = dim;
  cell.implicit = implicit;

  // Same pattern, frame, and measurements in both arms at a given size:
  // seeds depend only on the size, never on the mode.
  Rng pattern_rng(0x0b5e + dim);
  const cs::SamplingPattern p =
      cs::random_pattern(dim, dim, cfg.fraction, pattern_rng);
  cell.m = p.m();
  cell.n = p.n();
  cell.operator_bytes = implicit ? implicit_operator_bytes(dim, dim)
                                 : dense_operator_bytes(cell.n, cell.m);
  cell.mem_ratio_vs_dense =
      static_cast<double>(dense_operator_bytes(cell.n, cell.m)) /
      static_cast<double>(cell.operator_bytes);

  data::ThermalOptions topts;
  topts.rows = topts.cols = dim;
  Rng frame_rng(100 + dim);
  const la::Matrix truth = data::ThermalHandGenerator(topts).sample(frame_rng).values;
  const la::Vector y = cs::apply_pattern(p, truth.flatten());

  solvers::FistaOptions fopts;
  fopts.max_iterations = cfg.fista_iterations;
  fopts.tol = cfg.fista_tol;

  cs::DecoderOptions dopts;
  dopts.implicit_psi = implicit;
  // Plain decode only: no debias re-fit, no clamp, so the recorded RMSE is
  // the solver's own solution quality and the two arms compare exactly.
  dopts.debias = false;
  dopts.clamp01 = false;

  // Build phase: decoder construction (dense mode pays the N x N Ψ here),
  // operator cache fill, and the spectral-norm warm-up that decode reuses
  // as the Lipschitz hint. Once-per-geometry cost, separated from decode.
  const auto b0 = std::chrono::steady_clock::now();
  const cs::Decoder decoder(dim, dim, dopts,
                            std::make_shared<solvers::FistaSolver>(fopts));
  decoder.operator_norm(p);
  const auto b1 = std::chrono::steady_clock::now();
  cell.build_seconds = std::chrono::duration<double>(b1 - b0).count();

  const auto t0 = std::chrono::steady_clock::now();
  const cs::DecodeResult res = decoder.decode(p, y);
  const auto t1 = std::chrono::steady_clock::now();
  cell.decode_seconds = std::chrono::duration<double>(t1 - t0).count();
  cell.iterations = res.solver_iterations;
  cell.converged = res.converged;
  cell.residual_norm = res.residual_norm;
  cell.rmse = cs::rmse(res.frame, truth);
  return cell;
}

// Fills rmse_delta_vs_dense for every implicit cell whose size also ran the
// dense arm; dense cells compare against themselves (delta 0 by definition).
void fill_deltas(std::vector<OperatorCell>& cells) {
  for (OperatorCell& c : cells) {
    for (const OperatorCell& base : cells) {
      if (base.dim == c.dim && !base.implicit) {
        c.rmse_delta_vs_dense = std::fabs(c.rmse - base.rmse);
        break;
      }
    }
  }
}

std::string to_json(const std::vector<OperatorCell>& cells) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const OperatorCell& c = cells[i];
    out += strformat(
        "  {\"rows\": %zu, \"cols\": %zu, \"mode\": \"%s\", \"m\": %zu, "
        "\"n\": %zu, \"fraction\": %.4f, \"build_seconds\": %.4f, "
        "\"decode_seconds\": %.4f, \"iterations\": %d, \"converged\": %s, "
        "\"rmse\": %.9f, \"residual_norm\": %.3e, \"operator_bytes\": %zu, "
        "\"mem_ratio_vs_dense\": %.1f, \"rmse_delta_vs_dense\": %.3e}%s\n",
        c.dim, c.dim, c.implicit ? "implicit" : "dense", c.m, c.n,
        static_cast<double>(c.m) / static_cast<double>(c.n), c.build_seconds,
        c.decode_seconds, c.iterations, c.converged ? "true" : "false",
        c.rmse, c.residual_norm, c.operator_bytes, c.mem_ratio_vs_dense,
        c.rmse_delta_vs_dense, i + 1 < cells.size() ? "," : "");
  }
  out += "]\n";
  return out;
}

std::string human_bytes(std::size_t bytes) {
  if (bytes >= (std::size_t{1} << 30))
    return strformat("%.1f GB", static_cast<double>(bytes) / (1 << 30));
  if (bytes >= (std::size_t{1} << 20))
    return strformat("%.1f MB", static_cast<double>(bytes) / (1 << 20));
  return strformat("%.1f KB", static_cast<double>(bytes) / (1 << 10));
}

void print_table(const std::vector<OperatorCell>& cells,
                 const SweepConfig& cfg) {
  std::printf(
      "Dense vs matrix-free measurement operator — cs::Decoder, FISTA "
      "tol %.0e, sampling fraction %.2f\n",
      cfg.fista_tol, cfg.fraction);
  Table t({"size", "mode", "m", "build s", "decode s", "iters", "rmse",
           "op mem", "mem ratio", "|Δrmse|"});
  for (const OperatorCell& c : cells) {
    t.add_row({strformat("%zu", c.dim), c.implicit ? "implicit" : "dense",
               strformat("%zu", c.m), strformat("%.2f", c.build_seconds),
               strformat("%.2f", c.decode_seconds),
               strformat("%d", c.iterations), strformat("%.6f", c.rmse),
               human_bytes(c.operator_bytes),
               strformat("%.0fx", c.mem_ratio_vs_dense),
               c.rmse_delta_vs_dense < 0.0
                   ? std::string("n/a")
                   : strformat("%.1e", c.rmse_delta_vs_dense)});
  }
  std::printf("%s", t.to_text().c_str());
  std::printf(
      "shape: at 128x128 the implicit decode matches the dense rmse within "
      "1e-6 at >= 10x lower operator memory; 256x256 decodes implicit-only "
      "(dense would need %s)\n",
      human_bytes(dense_operator_bytes(256 * 256,
                                       static_cast<std::size_t>(
                                           cfg.fraction * 256 * 256)))
          .c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  if (!args.ok) {
    bench::print_bench_usage(argv[0]);
    return 2;
  }
  const SweepConfig cfg = args.smoke ? smoke_config() : SweepConfig{};

  std::vector<OperatorCell> cells;
  for (const std::size_t dim : cfg.both_dims) {
    cells.push_back(run_cell(cfg, dim, /*implicit=*/false));
    cells.push_back(run_cell(cfg, dim, /*implicit=*/true));
  }
  for (const std::size_t dim : cfg.implicit_only_dims)
    cells.push_back(run_cell(cfg, dim, /*implicit=*/true));
  fill_deltas(cells);

  if (args.json) {
    const std::string out = to_json(cells);
    std::fputs(out.c_str(), stdout);
    if (bench::should_record(args))
      bench::record_json(out, bench::record_path(
          args, FLEXCS_SOURCE_DIR "/BENCH_operator.json"));
  } else {
    print_table(cells, cfg);
  }
  return 0;
}
