// Crash-rate x worker-count sweep through runtime::DecodeService. Every
// cell decodes the same clean thermal frames through a forked worker fleet
// whose workers are configured to SIGKILL themselves after serving K tiles
// (persisting across respawns, so the crash rate is sustained for the whole
// cell, not a one-shot event). The supervisor must absorb every crash:
// re-dispatch the lost tile, respawn the slot, and stitch the frame anyway.
//
// The acceptance shape this bench exists to demonstrate (EXPERIMENTS.md
// E13): at a 20% per-tile worker crash rate the service loses zero frames,
// and because tile decodes are seeded from (seed, frame, tile) the stitched
// pixels are bit-identical to the crash-free run — rmse_vs_clean is exactly
// 1.0 in every cell. Crashes cost latency (re-dispatch + respawn), never
// pixels.
//
// Crash-rate knob: a worker with kill_after_tiles = K serves K tiles and
// dies consuming the (K+1)-th, so the sustained per-dispatch crash rate is
// 1 / (K + 1): rate 0.5 -> K = 1, rate 0.2 -> K = 4, rate 0 -> no injection.
//
// Usage:
//   bench_service_faults [--smoke] [--json] [--out PATH]
//
//   --smoke   tiny configuration (two crash rates, one fleet size, two
//             frames) used by the ctest smoke registration.
//   --json    machine-readable output instead of the text table.
//   --out     record path override (see bench_util.hpp).
//
// JSON schema (--json): stdout carries exactly one JSON array; one object
// per (crash rate, workers) cell, all keys always present:
//   {
//     "crash_rate":        number  — target per-dispatch crash probability
//     "kill_after_tiles":  integer — injected K (-1 = no injection)
//     "workers":           integer — forked worker processes in the fleet
//     "frames":            integer — frames decoded in the cell
//     "frames_lost":       integer — admitted but never stitched (target: 0)
//     "decode_seconds":    number  — wall time of the whole batch
//     "frames_per_second": number
//     "p50_latency_ms":    number  — per-frame submission -> stitched
//     "p99_latency_ms":    number
//     "rmse":              number  — mean stitched RMSE vs ground truth
//     "rmse_vs_clean":     number  — rmse / same-fleet crash-free baseline
//                                    (1.0 = crashes never touched pixels)
//     "worker_crashes":    integer — unexpected exits absorbed
//     "worker_respawns":   integer
//     "tile_redispatches": integer — dispatches after a failure
//     "tiles_in_process":  integer — broker-fallback decodes
//     "checksum_rejects":  integer — corrupt wire messages (expect 0 here)
//   }
//
// Full (non-smoke) --json runs additionally record the same array to
// BENCH_service_faults.json at the repository root; smoke runs never touch
// that file so the ctest registration cannot overwrite a recorded sweep.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "cs/metrics.hpp"
#include "data/thermal.hpp"
#include "runtime/service.hpp"
#include "runtime/stream.hpp"
#include "solvers/fista.hpp"

namespace {

using namespace flexcs;

struct SweepConfig {
  std::size_t dim = 32;
  std::size_t tile = 16;
  std::size_t halo = 2;
  std::vector<double> crash_rates = {0.0, 0.2, 0.5};
  std::vector<std::size_t> fleet_sizes = {1, 2, 4};
  std::size_t frames = 6;
  int fista_iterations = 400;
  double fista_tol = 1e-6;
};

SweepConfig smoke_config() {
  SweepConfig cfg;
  cfg.crash_rates = {0.0, 0.5};
  cfg.fleet_sizes = {2};
  cfg.frames = 2;
  return cfg;
}

struct FaultCell {
  double crash_rate = 0.0;
  int kill_after_tiles = -1;
  std::size_t workers = 0;
  std::size_t frames = 0;
  std::size_t frames_lost = 0;
  double decode_seconds = 0.0;
  double frames_per_second = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double rmse = 0.0;
  double rmse_vs_clean = 0.0;  // filled once the rate-0 baseline is known
  std::size_t worker_crashes = 0;
  std::size_t worker_respawns = 0;
  std::size_t tile_redispatches = 0;
  std::size_t tiles_in_process = 0;
  std::size_t checksum_rejects = 0;
};

// rate = 1 / (K + 1) per dispatched tile; rate 0 disables injection.
int kill_after_for_rate(double rate) {
  if (rate <= 0.0) return -1;
  return static_cast<int>(1.0 / rate + 0.5) - 1;
}

FaultCell run_cell(const SweepConfig& cfg, double rate, std::size_t workers) {
  FaultCell cell;
  cell.crash_rate = rate;
  cell.kill_after_tiles = kill_after_for_rate(rate);
  cell.workers = workers;
  cell.frames = cfg.frames;

  solvers::FistaOptions fopts;
  fopts.max_iterations = cfg.fista_iterations;
  fopts.tol = cfg.fista_tol;

  runtime::ServiceOptions opts;
  opts.tile_rows = opts.tile_cols = cfg.tile;
  opts.halo = cfg.halo;
  opts.workers = workers;
  opts.solver = std::make_shared<solvers::FistaSolver>(fopts);
  // Throughput and supervision are the subject: clean frames, plain decode
  // only, no debias re-fit. Identical settings in every cell.
  opts.pipeline.max_rung = runtime::Strategy::kPlainDecode;
  opts.pipeline.decoder.debias = false;
  opts.seed = 0x5eed;
  // Sustained crash rate: the budget must outlast the whole batch, and the
  // injection must follow every respawned process, on every slot.
  opts.max_respawns = 1 << 20;
  if (cell.kill_after_tiles >= 0) {
    runtime::WorkerFaultInjection fault;
    fault.kill_after_tiles = cell.kill_after_tiles;
    fault.persist_across_respawn = true;
    opts.fault_injection.assign(workers, fault);
  }

  runtime::DecodeService service(cfg.dim, cfg.dim, opts);

  data::ThermalOptions topts;
  topts.rows = topts.cols = cfg.dim;
  const data::ThermalHandGenerator gen(topts);
  std::vector<la::Matrix> truths;
  for (std::size_t f = 0; f < cfg.frames; ++f) {
    Rng rng(100 + f);
    truths.push_back(gen.sample(rng).values);
  }

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<runtime::ServiceFrameResult> results =
      service.process_batch(truths);
  const auto t1 = std::chrono::steady_clock::now();
  cell.decode_seconds = std::chrono::duration<double>(t1 - t0).count();
  cell.frames_per_second =
      static_cast<double>(cfg.frames) / cell.decode_seconds;

  std::vector<double> latencies;
  for (std::size_t f = 0; f < results.size(); ++f) {
    cell.rmse += cs::rmse(results[f].frame, truths[f]);
    latencies.push_back(results[f].latency_seconds);
  }
  cell.rmse /= static_cast<double>(cfg.frames);
  cell.p50_latency_ms = 1e3 * runtime::latency_percentile(latencies, 0.50);
  cell.p99_latency_ms = 1e3 * runtime::latency_percentile(latencies, 0.99);

  const runtime::ServiceHealth h = service.health();
  cell.frames_lost = h.frames_lost;
  cell.worker_crashes = h.worker_crashes;
  cell.worker_respawns = h.worker_respawns;
  cell.tile_redispatches = h.tile_redispatches;
  cell.tiles_in_process = h.tiles_in_process;
  cell.checksum_rejects = h.checksum_rejects;
  return cell;
}

// Normalises every cell against its fleet size's crash-free baseline. The
// determinism contract makes this exactly 1.0: a re-dispatched tile decodes
// bit-identically, so crashes change counters and latency, never pixels.
void fill_baselines(std::vector<FaultCell>& cells) {
  for (FaultCell& c : cells) {
    for (const FaultCell& base : cells) {
      if (base.workers == c.workers && base.crash_rate == 0.0) {
        c.rmse_vs_clean = base.rmse > 0.0 ? c.rmse / base.rmse : 0.0;
        break;
      }
    }
  }
}

std::string to_json(const std::vector<FaultCell>& cells) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const FaultCell& c = cells[i];
    out += strformat(
        "  {\"crash_rate\": %.2f, \"kill_after_tiles\": %d, "
        "\"workers\": %zu, \"frames\": %zu, \"frames_lost\": %zu, "
        "\"decode_seconds\": %.4f, \"frames_per_second\": %.4f, "
        "\"p50_latency_ms\": %.2f, \"p99_latency_ms\": %.2f, "
        "\"rmse\": %.6f, \"rmse_vs_clean\": %.6f, "
        "\"worker_crashes\": %zu, \"worker_respawns\": %zu, "
        "\"tile_redispatches\": %zu, \"tiles_in_process\": %zu, "
        "\"checksum_rejects\": %zu}%s\n",
        c.crash_rate, c.kill_after_tiles, c.workers, c.frames,
        c.frames_lost, c.decode_seconds, c.frames_per_second,
        c.p50_latency_ms, c.p99_latency_ms, c.rmse, c.rmse_vs_clean,
        c.worker_crashes, c.worker_respawns, c.tile_redispatches,
        c.tiles_in_process, c.checksum_rejects,
        i + 1 < cells.size() ? "," : "");
  }
  out += "]\n";
  return out;
}

void print_table(const std::vector<FaultCell>& cells, const SweepConfig& cfg) {
  std::printf(
      "Service fault sweep — DecodeService, %zux%zu frames, tile %zu halo "
      "%zu, %zu frames per cell, FISTA\n",
      cfg.dim, cfg.dim, cfg.tile, cfg.halo, cfg.frames);
  Table t({"rate", "workers", "lost", "crash", "resp", "redisp", "inproc",
           "fps", "p50 ms", "p99 ms", "rmse", "rmse/clean"});
  for (const FaultCell& c : cells) {
    t.add_row({strformat("%.0f%%", 100.0 * c.crash_rate),
               strformat("%zu", c.workers), strformat("%zu", c.frames_lost),
               strformat("%zu", c.worker_crashes),
               strformat("%zu", c.worker_respawns),
               strformat("%zu", c.tile_redispatches),
               strformat("%zu", c.tiles_in_process),
               strformat("%.3f", c.frames_per_second),
               strformat("%.1f", c.p50_latency_ms),
               strformat("%.1f", c.p99_latency_ms),
               strformat("%.4f", c.rmse),
               strformat("%.4f", c.rmse_vs_clean)});
  }
  std::printf("%s", t.to_text().c_str());
  std::printf(
      "shape: zero lost frames at every crash rate and rmse/clean exactly "
      "1.0 — crashes cost re-dispatch latency, never pixels\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  if (!args.ok) {
    bench::print_bench_usage(argv[0]);
    return 2;
  }
  const SweepConfig cfg = args.smoke ? smoke_config() : SweepConfig{};

  std::vector<FaultCell> cells;
  for (const double rate : cfg.crash_rates)
    for (const std::size_t workers : cfg.fleet_sizes)
      cells.push_back(run_cell(cfg, rate, workers));
  fill_baselines(cells);

  if (args.json) {
    const std::string out = to_json(cells);
    std::fputs(out.c_str(), stdout);
    if (bench::should_record(args))
      bench::record_json(out, bench::record_path(
          args, FLEXCS_SOURCE_DIR "/BENCH_service_faults.json"));
  } else {
    print_table(cells, cfg);
  }
  return 0;
}
