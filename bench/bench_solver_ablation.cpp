// Ablation: the decoder's sparse-recovery solver (DESIGN.md E8).
//
// The paper notes the L1 decode "can be re-formulated as a linear
// programming problem" (our bp-lp solver) but any sparse solver works.
// This bench compares the library's solvers on (a) exact recovery of
// synthetic sparse signals and (b) end-to-end frame reconstruction, plus a
// DCT-vs-Haar basis ablation.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "cs/decoder.hpp"
#include "cs/encoder.hpp"
#include "cs/metrics.hpp"
#include "data/thermal.hpp"
#include "solvers/solver.hpp"

namespace {

using namespace flexcs;

la::Matrix gaussian_sensing(std::size_t m, std::size_t n, Rng& rng) {
  la::Matrix a(m, n);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.normal();
  for (std::size_t c = 0; c < n; ++c) {
    double nn = 0.0;
    for (std::size_t r = 0; r < m; ++r) nn += a(r, c) * a(r, c);
    nn = std::sqrt(nn);
    for (std::size_t r = 0; r < m; ++r) a(r, c) /= nn;
  }
  return a;
}

void print_tables() {
  // --- (a) Exact recovery on synthetic sparse problems.
  {
    std::printf("Solver ablation — sparse recovery, M=64 N=128 K=8 "
                "(mean over 5 trials)\n");
    Table t({"solver", "rel. error", "rel. error (debiased)", "time (ms)"});
    for (const auto& name : solvers::solver_names()) {
      double err = 0.0, err_db = 0.0, ms = 0.0;
      const int trials = 5;
      for (int trial = 0; trial < trials; ++trial) {
        Rng rng(37 + trial);
        const la::Matrix a = gaussian_sensing(64, 128, rng);
        la::Vector x0(128, 0.0);
        for (std::size_t idx : rng.sample_without_replacement(128, 8))
          x0[idx] = rng.normal() + (rng.bernoulli(0.5) ? 1.0 : -1.0);
        const la::Vector b = matvec(a, x0);
        const auto solver = solvers::make_solver(name);
        const auto t0 = std::chrono::steady_clock::now();
        solvers::SolveResult r = solver->solve(a, b);
        const auto t1 = std::chrono::steady_clock::now();
        ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
        err += (r.x - x0).norm2() / x0.norm2();
        const la::Vector db = solvers::debias_on_support(a, b, r.x, 1e-3);
        err_db += (db - x0).norm2() / x0.norm2();
      }
      t.add_row({name, strformat("%.2e", err / trials),
                 strformat("%.2e", err_db / trials),
                 strformat("%.2f", ms / trials)});
    }
    std::printf("%s\n", t.to_text().c_str());
  }

  // --- (b) End-to-end frame decode (32x32 thermal frame, 50 % sampling).
  {
    std::printf("Decoder ablation — thermal frame, 50%% sampling "
                "(bp-lp omitted: LP tableau too large at N=1024)\n");
    Table t({"solver", "frame RMSE", "time (ms)"});
    Rng rng(11);
    data::ThermalHandGenerator gen;
    const la::Matrix truth = gen.sample(rng).values;
    const cs::SamplingPattern p = cs::random_pattern(32, 32, 0.5, rng);
    const la::Vector y = cs::Encoder().encode(truth, p, rng);
    for (const auto& name : solvers::solver_names()) {
      if (name == "bp-lp" || name == "ista") continue;  // too slow at N=1024
      std::shared_ptr<const solvers::SparseSolver> solver =
          solvers::make_solver(name);
      const cs::Decoder decoder(32, 32, cs::DecoderOptions{}, solver);
      const auto t0 = std::chrono::steady_clock::now();
      const cs::DecodeResult r = decoder.decode(p, y);
      const auto t1 = std::chrono::steady_clock::now();
      t.add_row({name, strformat("%.4f", cs::rmse(r.frame, truth)),
                 strformat("%.0f",
                           std::chrono::duration<double, std::milli>(t1 - t0)
                               .count())});
    }
    std::printf("%s\n", t.to_text().c_str());
  }

  // --- (c) Basis ablation: DCT (paper default) vs Haar wavelet.
  {
    std::printf("Basis ablation — frame RMSE at several sampling rates\n");
    Table t({"sampling", "DCT basis", "Haar basis"});
    data::ThermalHandGenerator gen;
    for (double frac : {0.4, 0.5, 0.6}) {
      double e_dct = 0.0, e_haar = 0.0;
      for (int trial = 0; trial < 3; ++trial) {
        Rng rng(70 + trial);
        const la::Matrix truth = gen.sample(rng).values;
        const cs::SamplingPattern p = cs::random_pattern(32, 32, frac, rng);
        const la::Vector y = cs::Encoder().encode(truth, p, rng);
        const cs::Decoder dct_dec(32, 32);
        cs::DecoderOptions hopts;
        hopts.basis = dsp::BasisKind::kHaar2D;
        const cs::Decoder haar_dec(32, 32, hopts);
        e_dct += cs::rmse(dct_dec.decode(p, y).frame, truth);
        e_haar += cs::rmse(haar_dec.decode(p, y).frame, truth);
      }
      t.add_row({strformat("%.0f%%", 100.0 * frac),
                 strformat("%.4f", e_dct / 3.0),
                 strformat("%.4f", e_haar / 3.0)});
    }
    std::printf("%s\n", t.to_text().c_str());
  }
}

void BM_Solve_Omp_64x128(benchmark::State& state) {
  Rng rng(1);
  const la::Matrix a = gaussian_sensing(64, 128, rng);
  la::Vector x0(128, 0.0);
  for (std::size_t idx : rng.sample_without_replacement(128, 8))
    x0[idx] = rng.normal() + 1.0;
  const la::Vector b = matvec(a, x0);
  const auto solver = solvers::make_solver("omp");
  for (auto _ : state) benchmark::DoNotOptimize(solver->solve(a, b));
}
BENCHMARK(BM_Solve_Omp_64x128);

void BM_Solve_Fista_64x128(benchmark::State& state) {
  Rng rng(2);
  const la::Matrix a = gaussian_sensing(64, 128, rng);
  la::Vector x0(128, 0.0);
  for (std::size_t idx : rng.sample_without_replacement(128, 8))
    x0[idx] = rng.normal() + 1.0;
  const la::Vector b = matvec(a, x0);
  const auto solver = solvers::make_solver("fista");
  for (auto _ : state) benchmark::DoNotOptimize(solver->solve(a, b));
}
BENCHMARK(BM_Solve_Fista_64x128)->Unit(benchmark::kMillisecond);

void BM_Solve_Admm_64x128(benchmark::State& state) {
  Rng rng(3);
  const la::Matrix a = gaussian_sensing(64, 128, rng);
  la::Vector x0(128, 0.0);
  for (std::size_t idx : rng.sample_without_replacement(128, 8))
    x0[idx] = rng.normal() + 1.0;
  const la::Vector b = matvec(a, x0);
  const auto solver = solvers::make_solver("admm");
  for (auto _ : state) benchmark::DoNotOptimize(solver->solve(a, b));
}
BENCHMARK(BM_Solve_Admm_64x128)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
