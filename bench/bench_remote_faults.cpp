// Network-fault x injection-rate x fleet-mix sweep through the remote (TCP)
// worker path of runtime::DecodeService. Every cell decodes the same clean
// thermal frames through a heterogeneous fleet — loopback-forked remote
// workers dialing the broker's listener, optionally alongside socketpair
// forked workers — while a deterministic network fault is injected into a
// fraction of the remote slots: refused connects, flapping peers,
// mid-message disconnects, in-flight byte corruption, stalled (half-open)
// connections, or a full partition (no remote ever connects).
//
// The acceptance shape this bench exists to demonstrate (EXPERIMENTS.md
// E14): under every fault kind at every injection rate the service loses
// zero frames, and because tile decodes are seeded from (seed, frame, tile)
// the stitched pixels are bit-identical to the fault-free run —
// rmse_vs_clean is exactly 1.0 in every cell. Network faults cost
// reconnects, timeouts, and re-dispatch latency, never pixels.
//
// Injection rate: the fraction of remote slots carrying the fault, rounded
// to a worker count (rate 0.5 with two remote slots injects one of them).
// The partition kind ignores the rate — no loopback worker is spawned at
// all, so the whole remote fleet is unreachable and the broker must degrade
// to the forked fleet or in-process decode after the connect grace window.
//
// Usage:
//   bench_remote_faults [--smoke] [--json] [--out PATH]
//
//   --smoke   tiny configuration (remote-only fleet, three fault kinds, two
//             frames) used by the ctest smoke registration.
//   --json    machine-readable output instead of the text table.
//   --out     record path override (see bench_util.hpp).
//
// JSON schema (--json): stdout carries exactly one JSON array; one object
// per (fault kind, rate, fleet mix) cell, all keys always present:
//   {
//     "fault":             string  — none|refuse|flap|disconnect|corrupt|
//                                    stall|partition
//     "rate":              number  — target fraction of remote slots injected
//     "injected":          integer — remote slots actually injected
//     "forked_workers":    integer — socketpair worker processes
//     "remote_workers":    integer — remote (TCP) worker slots
//     "frames":            integer — frames decoded in the cell
//     "frames_lost":       integer — admitted but never stitched (target: 0)
//     "decode_seconds":    number  — wall time of the whole batch
//     "frames_per_second": number
//     "p50_latency_ms":    number  — per-frame submission -> stitched
//     "p99_latency_ms":    number
//     "rmse":              number  — mean stitched RMSE vs ground truth
//     "rmse_vs_clean":     number  — rmse / same-mix fault-free baseline
//                                    (1.0 = faults never touched pixels)
//     "remote_connects":   integer — first-time handshake admissions
//     "remote_reconnects": integer — re-admissions after a disconnect
//     "remote_disconnects":integer — connection losses absorbed
//     "handshake_failures":integer — rejected or malformed hellos
//     "read_timeouts":     integer — heartbeat / pong timeouts
//     "redispatches_on_disconnect": integer — in-flight tiles requeued
//     "checksum_rejects":  integer — corrupt wire messages torn down
//     "tile_redispatches": integer — dispatches after any failure
//     "tiles_in_process":  integer — broker-fallback decodes
//   }
//
// Full (non-smoke) --json runs additionally record the same array to
// BENCH_remote_faults.json at the repository root; smoke runs never touch
// that file so the ctest registration cannot overwrite a recorded sweep.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "cs/metrics.hpp"
#include "data/thermal.hpp"
#include "runtime/service.hpp"
#include "runtime/stream.hpp"
#include "solvers/fista.hpp"

namespace {

using namespace flexcs;

enum class FaultKind {
  kNone,
  kRefuse,
  kFlap,
  kDisconnect,
  kCorrupt,
  kStall,
  kPartition,
};

const char* fault_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kRefuse: return "refuse";
    case FaultKind::kFlap: return "flap";
    case FaultKind::kDisconnect: return "disconnect";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kStall: return "stall";
    case FaultKind::kPartition: return "partition";
  }
  return "unknown";
}

struct FleetMix {
  const char* name;
  std::size_t forked;
  std::size_t remote;
};

struct SweepConfig {
  std::size_t dim = 32;
  std::size_t tile = 16;
  std::size_t halo = 2;
  std::vector<FleetMix> mixes = {{"remote", 0, 2}, {"mixed", 2, 2}};
  // Applied to every kind except kNone (always rate 0) and kPartition
  // (always the whole remote fleet).
  std::vector<double> rates = {0.5, 1.0};
  std::vector<FaultKind> kinds = {
      FaultKind::kNone,       FaultKind::kRefuse,  FaultKind::kFlap,
      FaultKind::kDisconnect, FaultKind::kCorrupt, FaultKind::kStall,
      FaultKind::kPartition,
  };
  std::size_t frames = 4;
  int fista_iterations = 400;
  double fista_tol = 1e-6;
};

SweepConfig smoke_config() {
  SweepConfig cfg;
  cfg.mixes = {{"remote", 0, 2}};
  cfg.rates = {1.0};
  cfg.kinds = {FaultKind::kNone, FaultKind::kDisconnect, FaultKind::kCorrupt};
  cfg.frames = 2;
  return cfg;
}

struct FaultCell {
  FaultKind kind = FaultKind::kNone;
  double rate = 0.0;
  std::size_t injected = 0;
  std::size_t forked = 0;
  std::size_t remote = 0;
  std::size_t frames = 0;
  std::size_t frames_lost = 0;
  double decode_seconds = 0.0;
  double frames_per_second = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double rmse = 0.0;
  double rmse_vs_clean = 0.0;  // filled once the fault-free baseline is known
  std::size_t remote_connects = 0;
  std::size_t remote_reconnects = 0;
  std::size_t remote_disconnects = 0;
  std::size_t handshake_failures = 0;
  std::size_t read_timeouts = 0;
  std::size_t redispatches_on_disconnect = 0;
  std::size_t checksum_rejects = 0;
  std::size_t tile_redispatches = 0;
  std::size_t tiles_in_process = 0;
};

runtime::RemoteFaultInjection injection_for(FaultKind kind) {
  runtime::RemoteFaultInjection fault;
  switch (kind) {
    case FaultKind::kRefuse:
      fault.refuse_connects = 3;
      break;
    case FaultKind::kFlap:
      fault.flap_connects = 2;
      break;
    case FaultKind::kDisconnect:
      fault.disconnect_after_tiles = 0;  // half-send the first response
      break;
    case FaultKind::kCorrupt:
      fault.corrupt_after_tiles = 0;  // flip a payload bit in flight
      break;
    case FaultKind::kStall:
      // Far beyond the broker's read timeout: recovery must come from the
      // heartbeat, not from the stall ending.
      fault.stall_after_tiles = 0;
      fault.stall_seconds = 30.0;
      break;
    case FaultKind::kNone:
    case FaultKind::kPartition:
      break;
  }
  return fault;
}

FaultCell run_cell(const SweepConfig& cfg, FaultKind kind, double rate,
                   const FleetMix& mix) {
  FaultCell cell;
  cell.kind = kind;
  cell.rate = kind == FaultKind::kPartition ? 1.0 : rate;
  cell.forked = mix.forked;
  cell.remote = mix.remote;
  cell.frames = cfg.frames;

  solvers::FistaOptions fopts;
  fopts.max_iterations = cfg.fista_iterations;
  fopts.tol = cfg.fista_tol;

  runtime::ServiceOptions opts;
  opts.tile_rows = opts.tile_cols = cfg.tile;
  opts.halo = cfg.halo;
  opts.workers = mix.forked;
  opts.remote_workers = mix.remote;
  opts.solver = std::make_shared<solvers::FistaSolver>(fopts);
  // Throughput and supervision are the subject: clean frames, plain decode
  // only, no debias re-fit. Identical settings in every cell.
  opts.pipeline.max_rung = runtime::Strategy::kPlainDecode;
  opts.pipeline.decoder.debias = false;
  opts.seed = 0x5eed;
  // Tight supervision so stall / partition cells recover in bench time
  // rather than at the production-default timeouts.
  opts.heartbeat_floor_seconds = 0.3;
  opts.remote_read_timeout_seconds = 0.3;
  opts.ping_interval_seconds = 0.1;
  opts.remote_connect_grace_seconds = kind == FaultKind::kPartition ? 0.3 : 2.0;
  opts.max_respawns = 1 << 20;
  opts.max_remote_reconnects = 1 << 20;

  if (kind == FaultKind::kPartition) {
    // The whole remote fleet is unreachable: nothing ever dials in.
    opts.spawn_remote_loopback = false;
    cell.injected = mix.remote;
  } else if (kind != FaultKind::kNone) {
    cell.injected =
        static_cast<std::size_t>(rate * static_cast<double>(mix.remote) + 0.5);
    opts.remote_fault_injection.assign(cell.injected, injection_for(kind));
  }

  runtime::DecodeService service(cfg.dim, cfg.dim, opts);

  data::ThermalOptions topts;
  topts.rows = topts.cols = cfg.dim;
  const data::ThermalHandGenerator gen(topts);
  std::vector<la::Matrix> truths;
  for (std::size_t f = 0; f < cfg.frames; ++f) {
    Rng rng(100 + f);
    truths.push_back(gen.sample(rng).values);
  }

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<runtime::ServiceFrameResult> results =
      service.process_batch(truths);
  const auto t1 = std::chrono::steady_clock::now();
  cell.decode_seconds = std::chrono::duration<double>(t1 - t0).count();
  cell.frames_per_second =
      static_cast<double>(cfg.frames) / cell.decode_seconds;

  std::vector<double> latencies;
  for (std::size_t f = 0; f < results.size(); ++f) {
    cell.rmse += cs::rmse(results[f].frame, truths[f]);
    latencies.push_back(results[f].latency_seconds);
  }
  cell.rmse /= static_cast<double>(cfg.frames);
  cell.p50_latency_ms = 1e3 * runtime::latency_percentile(latencies, 0.50);
  cell.p99_latency_ms = 1e3 * runtime::latency_percentile(latencies, 0.99);

  const runtime::ServiceHealth h = service.health();
  cell.frames_lost = h.frames_lost;
  cell.remote_connects = h.remote_connects;
  cell.remote_reconnects = h.remote_reconnects;
  cell.remote_disconnects = h.remote_disconnects;
  cell.handshake_failures = h.handshake_failures;
  cell.read_timeouts = h.read_timeouts;
  cell.redispatches_on_disconnect = h.redispatches_on_disconnect;
  cell.checksum_rejects = h.checksum_rejects;
  cell.tile_redispatches = h.tile_redispatches;
  cell.tiles_in_process = h.tiles_in_process;
  return cell;
}

// Normalises every cell against its fleet mix's fault-free baseline. The
// determinism contract makes this exactly 1.0: a re-dispatched, fallback, or
// reconnect-served tile decodes bit-identically, so network faults change
// counters and latency, never pixels.
void fill_baselines(std::vector<FaultCell>& cells) {
  for (FaultCell& c : cells) {
    for (const FaultCell& base : cells) {
      if (base.forked == c.forked && base.remote == c.remote &&
          base.kind == FaultKind::kNone) {
        c.rmse_vs_clean = base.rmse > 0.0 ? c.rmse / base.rmse : 0.0;
        break;
      }
    }
  }
}

std::string to_json(const std::vector<FaultCell>& cells) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const FaultCell& c = cells[i];
    out += strformat(
        "  {\"fault\": \"%s\", \"rate\": %.2f, \"injected\": %zu, "
        "\"forked_workers\": %zu, \"remote_workers\": %zu, "
        "\"frames\": %zu, \"frames_lost\": %zu, "
        "\"decode_seconds\": %.4f, \"frames_per_second\": %.4f, "
        "\"p50_latency_ms\": %.2f, \"p99_latency_ms\": %.2f, "
        "\"rmse\": %.6f, \"rmse_vs_clean\": %.6f, "
        "\"remote_connects\": %zu, \"remote_reconnects\": %zu, "
        "\"remote_disconnects\": %zu, \"handshake_failures\": %zu, "
        "\"read_timeouts\": %zu, \"redispatches_on_disconnect\": %zu, "
        "\"checksum_rejects\": %zu, \"tile_redispatches\": %zu, "
        "\"tiles_in_process\": %zu}%s\n",
        fault_name(c.kind), c.rate, c.injected, c.forked, c.remote, c.frames,
        c.frames_lost, c.decode_seconds, c.frames_per_second,
        c.p50_latency_ms, c.p99_latency_ms, c.rmse, c.rmse_vs_clean,
        c.remote_connects, c.remote_reconnects, c.remote_disconnects,
        c.handshake_failures, c.read_timeouts, c.redispatches_on_disconnect,
        c.checksum_rejects, c.tile_redispatches, c.tiles_in_process,
        i + 1 < cells.size() ? "," : "");
  }
  out += "]\n";
  return out;
}

void print_table(const std::vector<FaultCell>& cells, const SweepConfig& cfg) {
  std::printf(
      "Remote fault sweep — DecodeService over TCP, %zux%zu frames, tile "
      "%zu halo %zu, %zu frames per cell, FISTA\n",
      cfg.dim, cfg.dim, cfg.tile, cfg.halo, cfg.frames);
  Table t({"fault", "rate", "fleet", "lost", "conn", "reconn", "disc",
           "tmo", "crc", "inproc", "fps", "p99 ms", "rmse/clean"});
  for (const FaultCell& c : cells) {
    t.add_row({fault_name(c.kind), strformat("%.0f%%", 100.0 * c.rate),
               strformat("%zuf+%zur", c.forked, c.remote),
               strformat("%zu", c.frames_lost),
               strformat("%zu", c.remote_connects),
               strformat("%zu", c.remote_reconnects),
               strformat("%zu", c.remote_disconnects),
               strformat("%zu", c.read_timeouts),
               strformat("%zu", c.checksum_rejects),
               strformat("%zu", c.tiles_in_process),
               strformat("%.3f", c.frames_per_second),
               strformat("%.1f", c.p99_latency_ms),
               strformat("%.4f", c.rmse_vs_clean)});
  }
  std::printf("%s", t.to_text().c_str());
  std::printf(
      "shape: zero lost frames under every network fault and rmse/clean "
      "exactly 1.0 — faults cost reconnects and latency, never pixels\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  if (!args.ok) {
    bench::print_bench_usage(argv[0]);
    return 2;
  }
  const SweepConfig cfg = args.smoke ? smoke_config() : SweepConfig{};

  std::vector<FaultCell> cells;
  for (const FleetMix& mix : cfg.mixes) {
    for (const FaultKind kind : cfg.kinds) {
      if (kind == FaultKind::kNone || kind == FaultKind::kPartition) {
        cells.push_back(run_cell(cfg, kind, 0.0, mix));
        continue;
      }
      std::size_t last_injected = 0;
      for (const double rate : cfg.rates) {
        const std::size_t injected = static_cast<std::size_t>(
            rate * static_cast<double>(mix.remote) + 0.5);
        if (injected == 0 || injected == last_injected) continue;
        last_injected = injected;
        cells.push_back(run_cell(cfg, kind, rate, mix));
      }
    }
  }
  fill_baselines(cells);

  if (args.json) {
    const std::string out = to_json(cells);
    std::fputs(out.c_str(), stdout);
    if (bench::should_record(args))
      bench::record_json(out, bench::record_path(
          args, FLEXCS_SOURCE_DIR "/BENCH_remote_faults.json"));
  } else {
    print_table(cells, cfg);
  }
  return 0;
}
