// Event-driven readout sweep: scene activity level x (gated | ungated)
// through runtime::ShardedDecoder. Every cell streams the same synthetic
// scene — a thermal background in which a fixed subset of `active` tiles
// carries a moving hot blob while every other tile stays bit-identical frame
// to frame — through two decoders with the identical solver configuration
// and iteration budget. The ungated arm decodes every tile of every frame;
// the gated arm decodes only the tiles whose activity detector fired and
// serves the rest verbatim from the previous reconstruction.
//
// The acceptance shape this bench exists to demonstrate: at <= 25 % active
// tiles the gated arm delivers >= 3x the ungated steady-state frames/sec,
// its active-tile RMSE stays in the ungated quality regime (same solver,
// same budget — the speedup is bought with skipped work, not with quality),
// and every skipped tile is served bit-for-bit from the previous frame
// (skipped_bit_identical is true in every cell).
//
// Timing is steady-state: both arms first decode one warm-up frame (the
// gated arm's first frame is a forced full decode — there is nothing to
// serve stale yet), then the timed frames follow. The warm-up is excluded
// from the fps of both arms alike.
//
// Usage:
//   bench_activity [--smoke] [--json] [--out PATH]
//
//   --smoke   tiny configuration (32x32, 16 tiles, two activity levels) used
//             by the ctest smoke registration; finishes in seconds.
//   --json    machine-readable output instead of the text table.
//   --out     record path override (see bench_util.hpp).
//
// JSON schema (--json): stdout carries exactly one JSON array; one object
// per activity level, all keys always present:
//   {
//     "rows":                  integer — array rows (= cols, square sweep)
//     "cols":                  integer
//     "tile":                  integer — tile side (halo 0 in this sweep)
//     "tiles":                 integer — tiles per frame
//     "active_tiles":          integer — tiles carrying moving content
//     "active_fraction":       number  — active_tiles / tiles
//     "frames":                integer — timed frames (warm-up excluded)
//     "gated_fps":             number  — gated steady-state frames/sec
//     "ungated_fps":           number  — ungated steady-state frames/sec
//     "fps_ratio":             number  — gated_fps / ungated_fps
//     "gated_active_rmse":     number  — RMSE over active tiles vs truth
//     "ungated_active_rmse":   number  — same, ungated arm
//     "active_rmse_ratio":     number  — gated / ungated active-tile RMSE
//     "tiles_skipped":         integer — gated arm, summed over timed frames
//     "tiles_expected_skipped":integer — (tiles - active) x frames
//     "skipped_bit_identical": boolean — every skipped tile matched the
//                                        previous reconstruction bit-for-bit
//     "gated_decode_calls":    integer — solver runs, gated timed frames
//     "ungated_decode_calls":  integer — solver runs, ungated timed frames
//   }
//
// Full (non-smoke) --json runs additionally record the same array to
// BENCH_activity.json at the repository root; smoke runs never touch that
// file so the ctest registration cannot overwrite a recorded sweep.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "cs/metrics.hpp"
#include "data/thermal.hpp"
#include "runtime/shard.hpp"
#include "runtime/tile_grid.hpp"
#include "solvers/fista.hpp"

namespace {

using namespace flexcs;

struct SweepConfig {
  std::size_t dim = 64;
  std::size_t tile = 16;  // 4x4 grid = 16 tiles
  std::vector<std::size_t> active_levels = {2, 4, 8, 16};
  std::size_t frames = 8;  // timed frames (one warm-up frame on top)
  std::size_t workers = 2;
  std::size_t queue_capacity = 32;
  double threshold = 0.05;
  double detector_fraction = 0.25;
  int fista_iterations = 400;
  double fista_tol = 1e-6;
};

SweepConfig smoke_config() {
  SweepConfig cfg;
  cfg.dim = 32;
  cfg.tile = 8;
  cfg.active_levels = {2, 8};
  cfg.frames = 3;
  return cfg;
}

struct ActivityCell {
  std::size_t dim = 0;
  std::size_t tile = 0;
  std::size_t tiles = 0;
  std::size_t active_tiles = 0;
  std::size_t frames = 0;
  double gated_fps = 0.0;
  double ungated_fps = 0.0;
  double fps_ratio = 0.0;
  double gated_active_rmse = 0.0;
  double ungated_active_rmse = 0.0;
  double active_rmse_ratio = 0.0;
  std::size_t tiles_skipped = 0;
  std::size_t tiles_expected_skipped = 0;
  bool skipped_bit_identical = true;
  int gated_decode_calls = 0;
  int ungated_decode_calls = 0;
};

// The scene: a fixed thermal background; each active tile carries a hot
// Gaussian blob whose centre orbits the tile, so consecutive frames of an
// active tile differ strongly (the detector cannot miss it) while every
// inactive tile stays bit-identical to the previous frame.
std::vector<la::Matrix> make_scene(const runtime::TileGrid& grid,
                                   std::size_t active, std::size_t frames) {
  data::ThermalOptions topts;
  topts.rows = grid.rows;
  topts.cols = grid.cols;
  Rng rng(0xbe7c);
  const la::Matrix base = data::ThermalHandGenerator(topts).sample(rng).values;

  std::vector<la::Matrix> scene;
  scene.reserve(frames);
  const double radius = static_cast<double>(grid.tile_rows) / 4.0;
  const double sigma = static_cast<double>(grid.tile_rows) / 6.0;
  for (std::size_t f = 0; f < frames; ++f) {
    la::Matrix frame = base;
    for (std::size_t t = 0; t < active; ++t) {
      const std::size_t r0 = grid.tile_row(t) * grid.tile_rows;
      const std::size_t c0 = grid.tile_col(t) * grid.tile_cols;
      // Blob centre orbits the tile centre, one step per frame; the phase
      // offset per tile decorrelates neighbouring tiles' motion.
      const double phase =
          0.9 * static_cast<double>(f) + 0.7 * static_cast<double>(t);
      const double ci = static_cast<double>(grid.tile_rows) / 2.0 +
                        radius * std::cos(phase);
      const double cj = static_cast<double>(grid.tile_cols) / 2.0 +
                        radius * std::sin(phase);
      for (std::size_t i = 0; i < grid.tile_rows; ++i) {
        for (std::size_t j = 0; j < grid.tile_cols; ++j) {
          const double di = static_cast<double>(i) - ci;
          const double dj = static_cast<double>(j) - cj;
          const double bump =
              0.6 * std::exp(-(di * di + dj * dj) / (2.0 * sigma * sigma));
          double& px = frame(r0 + i, c0 + j);
          px = std::min(1.0, px + bump);
        }
      }
    }
    scene.push_back(std::move(frame));
  }
  return scene;
}

// RMSE over the active tiles only (the tiles both arms actually decode
// fresh every frame), averaged over the timed frames.
double active_tile_rmse(const runtime::TileGrid& grid, std::size_t active,
                        const std::vector<la::Matrix>& recon,
                        const std::vector<la::Matrix>& truth,
                        std::size_t first_timed) {
  double sum = 0.0;
  std::size_t terms = 0;
  for (std::size_t f = first_timed; f < recon.size(); ++f) {
    for (std::size_t t = 0; t < active; ++t) {
      const std::size_t r0 = grid.tile_row(t) * grid.tile_rows;
      const std::size_t c0 = grid.tile_col(t) * grid.tile_cols;
      double sq = 0.0;
      for (std::size_t i = 0; i < grid.tile_rows; ++i)
        for (std::size_t j = 0; j < grid.tile_cols; ++j) {
          const double d =
              recon[f](r0 + i, c0 + j) - truth[f](r0 + i, c0 + j);
          sq += d * d;
        }
      sum += std::sqrt(
          sq / static_cast<double>(grid.tile_rows * grid.tile_cols));
      ++terms;
    }
  }
  return terms > 0 ? sum / static_cast<double>(terms) : 0.0;
}

runtime::ShardOptions decoder_options(const SweepConfig& cfg, bool gated) {
  solvers::FistaOptions fopts;
  fopts.max_iterations = cfg.fista_iterations;
  fopts.tol = cfg.fista_tol;

  runtime::ShardOptions opts;
  opts.tile_rows = opts.tile_cols = cfg.tile;
  opts.halo = 0;
  opts.stream.workers = cfg.workers;
  opts.stream.queue_capacity = cfg.queue_capacity;
  opts.stream.solver = std::make_shared<solvers::FistaSolver>(fopts);
  // Throughput is the subject: clean frames, plain decode only, identical
  // iteration budget in both arms.
  opts.stream.pipeline.max_rung = runtime::Strategy::kPlainDecode;
  opts.stream.pipeline.decoder.debias = false;
  opts.stream.seed = 0xa11d;
  if (gated) {
    opts.gate.enabled = true;
    opts.gate.threshold = cfg.threshold;
    opts.gate.detector_fraction = cfg.detector_fraction;
    opts.gate.force_refresh_period = 0;  // activity is the only trigger
  }
  return opts;
}

ActivityCell run_cell(const SweepConfig& cfg, std::size_t active) {
  const runtime::TileGrid grid(cfg.dim, cfg.dim, cfg.tile, cfg.tile, 0);
  ActivityCell cell;
  cell.dim = cfg.dim;
  cell.tile = cfg.tile;
  cell.tiles = grid.tiles();
  cell.active_tiles = active;
  cell.frames = cfg.frames;
  cell.tiles_expected_skipped = (grid.tiles() - active) * cfg.frames;

  // Warm-up frame + timed frames, one scene shared by both arms.
  const std::vector<la::Matrix> scene =
      make_scene(grid, active, cfg.frames + 1);

  for (const bool gated : {true, false}) {
    runtime::ShardedDecoder sharded(cfg.dim, cfg.dim,
                                    decoder_options(cfg, gated));
    std::vector<la::Matrix> recon;
    recon.reserve(scene.size());
    recon.push_back(sharded.process(scene[0]).frame);  // warm-up, untimed

    int decode_calls = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t f = 1; f < scene.size(); ++f) {
      runtime::ShardFrameResult res = sharded.process(scene[f]);
      decode_calls += res.report.decode_calls;
      if (gated) {
        cell.tiles_skipped += res.report.tiles_skipped;
        // Audit the staleness contract: every skipped tile's pixels must
        // equal the previous reconstruction bit for bit.
        for (std::size_t t = 0; t < grid.tiles(); ++t) {
          if (!res.report.tile_reports[t].served_stale) continue;
          const std::size_t r0 = grid.tile_row(t) * grid.tile_rows;
          const std::size_t c0 = grid.tile_col(t) * grid.tile_cols;
          for (std::size_t i = 0; i < grid.tile_rows; ++i)
            for (std::size_t j = 0; j < grid.tile_cols; ++j)
              if (res.frame(r0 + i, c0 + j) !=
                  recon.back()(r0 + i, c0 + j))
                cell.skipped_bit_identical = false;
        }
      }
      recon.push_back(std::move(res.frame));
    }
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    const double fps = static_cast<double>(cfg.frames) / seconds;
    const double rmse = active_tile_rmse(grid, active, recon, scene, 1);
    if (gated) {
      cell.gated_fps = fps;
      cell.gated_active_rmse = rmse;
      cell.gated_decode_calls = decode_calls;
    } else {
      cell.ungated_fps = fps;
      cell.ungated_active_rmse = rmse;
      cell.ungated_decode_calls = decode_calls;
    }
  }
  cell.fps_ratio = cell.ungated_fps > 0.0 ? cell.gated_fps / cell.ungated_fps
                                          : 0.0;
  cell.active_rmse_ratio = cell.ungated_active_rmse > 0.0
                               ? cell.gated_active_rmse /
                                     cell.ungated_active_rmse
                               : 0.0;
  return cell;
}

std::string to_json(const std::vector<ActivityCell>& cells) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ActivityCell& c = cells[i];
    out += strformat(
        "  {\"rows\": %zu, \"cols\": %zu, \"tile\": %zu, \"tiles\": %zu, "
        "\"active_tiles\": %zu, \"active_fraction\": %.4f, \"frames\": %zu, "
        "\"gated_fps\": %.4f, \"ungated_fps\": %.4f, \"fps_ratio\": %.3f, "
        "\"gated_active_rmse\": %.6f, \"ungated_active_rmse\": %.6f, "
        "\"active_rmse_ratio\": %.3f, \"tiles_skipped\": %zu, "
        "\"tiles_expected_skipped\": %zu, \"skipped_bit_identical\": %s, "
        "\"gated_decode_calls\": %d, \"ungated_decode_calls\": %d}%s\n",
        c.dim, c.dim, c.tile, c.tiles, c.active_tiles,
        static_cast<double>(c.active_tiles) / static_cast<double>(c.tiles),
        c.frames, c.gated_fps, c.ungated_fps, c.fps_ratio,
        c.gated_active_rmse, c.ungated_active_rmse, c.active_rmse_ratio,
        c.tiles_skipped, c.tiles_expected_skipped,
        c.skipped_bit_identical ? "true" : "false", c.gated_decode_calls,
        c.ungated_decode_calls, i + 1 < cells.size() ? "," : "");
  }
  out += "]\n";
  return out;
}

void print_table(const std::vector<ActivityCell>& cells,
                 const SweepConfig& cfg) {
  std::printf(
      "Event-driven readout — ShardedDecoder, %zu workers, %zu timed frames "
      "per cell, threshold %.2f, detector fraction %.2f\n",
      cfg.workers, cfg.frames, cfg.threshold, cfg.detector_fraction);
  Table t({"tiles", "active", "gated fps", "ungated fps", "ratio",
           "act rmse (g)", "act rmse (u)", "skipped", "bit-ident"});
  for (const ActivityCell& c : cells) {
    t.add_row({strformat("%zu", c.tiles), strformat("%zu", c.active_tiles),
               strformat("%.3f", c.gated_fps),
               strformat("%.3f", c.ungated_fps),
               strformat("%.2fx", c.fps_ratio),
               strformat("%.4f", c.gated_active_rmse),
               strformat("%.4f", c.ungated_active_rmse),
               strformat("%zu/%zu", c.tiles_skipped,
                         c.tiles_expected_skipped),
               c.skipped_bit_identical ? "yes" : "NO"});
  }
  std::printf("%s", t.to_text().c_str());
  std::printf(
      "shape: at <= 25%% active tiles the gated arm delivers >= 3x the "
      "ungated frames/sec with active-tile rmse in the ungated regime and "
      "every skipped tile served bit-identically\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  if (!args.ok) {
    bench::print_bench_usage(argv[0]);
    return 2;
  }
  const SweepConfig cfg = args.smoke ? smoke_config() : SweepConfig{};

  std::vector<ActivityCell> cells;
  for (const std::size_t active : cfg.active_levels)
    cells.push_back(run_cell(cfg, active));

  if (args.json) {
    const std::string out = to_json(cells);
    std::fputs(out.c_str(), stdout);
    if (bench::should_record(args))
      bench::record_json(out, bench::record_path(
          args, FLEXCS_SOURCE_DIR "/BENCH_activity.json"));
  } else {
    print_table(cells, cfg);
  }
  return 0;
}
