// Sampling strategies when defects are NOT known in advance (paper Sec. 4.3):
//   * resampling: 10 rounds of sample+reconstruct, per-pixel median;
//   * RPCA: detect outliers by robust PCA on the frame, exclude, sample.
//
// Usage: ./build/examples/sampling_strategies [defect_rate]
#include <cstdio>
#include <cstdlib>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "cs/metrics.hpp"
#include "cs/pipeline.hpp"
#include "data/thermal.hpp"

int main(int argc, char** argv) {
  using namespace flexcs;
  const double defect_rate = argc > 1 ? std::atof(argv[1]) : 0.06;
  Rng rng(11);

  data::ThermalHandGenerator generator;
  const la::Matrix truth = generator.sample(rng).values;
  cs::DefectOptions dopts;
  dopts.rate = defect_rate;
  const cs::CorruptedFrame corrupted = cs::inject_defects(truth, dopts, rng);

  const cs::Encoder encoder;
  const cs::Decoder decoder(32, 32);
  const double sampling = 0.5;

  // Strategy 1: plain CS, blind to defects (defective pixels may be read).
  const cs::SamplingPattern blind =
      cs::random_pattern(32, 32, sampling, rng);
  const la::Matrix rec_blind =
      decoder.decode(blind, encoder.encode(corrupted.values, blind, rng))
          .frame;

  // Strategy 2: resampling with a median vote.
  cs::ResampleOptions ropts;
  ropts.rounds = 10;
  ropts.aggregate = cs::Aggregate::kMedian;
  const la::Matrix rec_median = cs::reconstruct_resample(
      corrupted.values, sampling, ropts, encoder, decoder, rng);

  // Strategy 3: RPCA outlier detection, then exclusion.
  cs::RpcaFilterOptions fopts;
  const auto rec_rpca = cs::reconstruct_rpca_batch(
      {corrupted.values}, sampling, fopts, encoder, decoder, rng);

  // Oracle reference (defects known from testing).
  const la::Matrix rec_oracle =
      cs::reconstruct_oracle(corrupted, sampling, encoder, decoder, rng);

  Table table({"strategy", "RMSE"});
  table.add_row({"no CS (raw frame)",
                 strformat("%.4f", cs::rmse(corrupted.values, truth))});
  table.add_row({"CS, blind sampling",
                 strformat("%.4f", cs::rmse(rec_blind, truth))});
  table.add_row({"CS + resample median (10 rounds)",
                 strformat("%.4f", cs::rmse(rec_median, truth))});
  table.add_row({"CS + RPCA outlier exclusion",
                 strformat("%.4f", cs::rmse(rec_rpca[0], truth))});
  table.add_row({"CS + oracle exclusion",
                 strformat("%.4f", cs::rmse(rec_oracle, truth))});
  std::printf("defect rate %.0f %%, sampling %.0f %%\n\n%s\n",
              100.0 * defect_rate, 100.0 * sampling,
              table.to_text().c_str());
  return 0;
}
