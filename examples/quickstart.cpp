// Quickstart: the complete compressed-sensing loop in ~40 lines.
//
//   1. synthesise a thermal sensor frame (32x32, values in [0,1]);
//   2. draw the random sampling pattern Φ (50 % of pixels) and its
//      active-matrix scan schedule;
//   3. encode (the flexible-electronics side);
//   4. decode by L1-minimisation in the DCT basis (the silicon side);
//   5. report RMSE and write PGM images for visual inspection.
//
// Build & run:  ./build/examples/quickstart [seed]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/pgm.hpp"
#include "cs/decoder.hpp"
#include "cs/encoder.hpp"
#include "cs/metrics.hpp"
#include "cs/theory.hpp"
#include "data/thermal.hpp"

int main(int argc, char** argv) {
  using namespace flexcs;
  const auto seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1ULL;
  Rng rng(seed);

  // 1. A synthetic thermal-hand frame (stands in for the paper's dataset).
  data::ThermalHandGenerator generator;
  const la::Matrix frame = generator.sample(rng).values;

  // 2. Sampling pattern: M = N/2 random pixels, as Eq. 1 suggests for the
  //    ~50 %-sparse body signals of Fig. 2.
  const cs::SamplingPattern pattern = cs::random_pattern(32, 32, 0.5, rng);
  const cs::ScanSchedule schedule = cs::make_scan_schedule(pattern);
  std::printf("array 32x32, sampling %zu of %zu pixels in %zu scan cycles\n",
              pattern.m(), pattern.n(),
              cs::scan_cycles(32, 32));

  // 3. Encode on the "flexible" side.
  const cs::Encoder encoder;
  const la::Vector measurements =
      encoder.encode_scanned(frame, schedule, rng);

  // 4. Decode on the "silicon" side.
  const cs::Decoder decoder(32, 32);
  const cs::DecodeResult result = decoder.decode(pattern, measurements);

  // 5. Report.
  const double err = cs::rmse(result.frame, frame);
  std::printf("reconstruction RMSE: %.4f  (PSNR %.1f dB)\n", err,
              cs::psnr(frame, result.frame));
  std::printf("solver: %s, %d iterations, converged: %s\n",
              decoder.solver().name().c_str(), result.solver_iterations,
              result.converged ? "yes" : "no");

  GrayImage original{32, 32, std::vector<double>(frame.data(),
                                                 frame.data() + frame.size())};
  GrayImage recon{32, 32,
                  std::vector<double>(result.frame.data(),
                                      result.frame.data() +
                                          result.frame.size())};
  // Artifacts go under out/ (gitignored), never into the working tree root.
  std::filesystem::create_directories("out");
  write_pgm("out/quickstart_original.pgm", original);
  write_pgm("out/quickstart_reconstructed.pgm", recon);
  std::printf(
      "wrote out/quickstart_original.pgm / out/quickstart_reconstructed.pgm\n");
  return 0;
}
