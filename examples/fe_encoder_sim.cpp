// Hardware-in-the-loop demo of the flexible CS encoder (paper Sec. 3):
//
//   1. extract CNT-TFT compact-model parameters from synthetic wafer data;
//   2. verify the pseudo-CMOS inverter and the 8-stage shift register
//      (gate level at 10 kHz, transistor level for two stages);
//   3. measure the self-biased amplifier gain at 30 kHz;
//   4. run DRC + LVS on the inverter cell;
//   5. estimate yield from CNT purity;
//   6. scan a thermal frame through the *electrical* active-matrix model
//      and decode it on the "silicon side".
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "cs/decoder.hpp"
#include "cs/metrics.hpp"
#include "data/thermal.hpp"
#include "fe/amplifier.hpp"
#include "fe/drc.hpp"
#include "fe/lvs.hpp"
#include "fe/sensor_array.hpp"
#include "fe/shift_register.hpp"
#include "fe/yield.hpp"

int main() {
  using namespace flexcs;
  Rng rng(5);

  // 1. Compact-model extraction from "measured" I-V data.
  fe::TftParams golden;
  golden.kp = 5.5e-5;
  golden.vth = -0.9;
  const auto iv = fe::synthesize_iv_sweep(golden, 0.02, rng);
  const fe::TftParams fitted = fe::fit_tft_params(iv, fe::TftParams{});
  std::printf("TFT extraction: kp %.2e (golden %.2e), vth %.2f (golden %.2f),"
              " fit error %.3f\n",
              fitted.kp, golden.kp, fitted.vth, golden.vth,
              fe::iv_fit_error(fitted, iv));

  // 2. Shift register.
  const fe::CellLibrary lib;
  fe::ShiftRegisterSpec sr;
  sr.data = {false, true, true, true, true, true, false, false};
  const fe::SrCheckResult gate_sr = fe::check_shift_register_logic(sr, 1e-5);
  std::printf("SR gate-level: 8 stages @ %.0f kHz -> %s (%zu bits)\n",
              sr.clk_hz / 1e3, gate_sr.functional ? "functional" : "FAIL",
              gate_sr.bits_checked);
  fe::ShiftRegisterSpec sr2 = sr;
  sr2.stages = 2;
  const fe::SrCheckResult tr_sr = fe::check_shift_register_transistor(sr2, lib);
  std::printf("SR transistor-level: 2 stages, %zu TFTs -> %s\n",
              tr_sr.tft_count, tr_sr.functional ? "functional" : "FAIL");

  // 3. Amplifier.
  const fe::AmplifierResult amp = fe::measure_amplifier(fe::AmplifierSpec{}, lib);
  std::printf("amplifier: %.1f dB @ 30 kHz, output swing %.2f V "
              "(paper: 28 dB, ~1.3 V)\n",
              amp.gain_db, amp.output_amplitude);

  // 4. Physical verification.
  const fe::Layout layout = fe::pseudo_cmos_inverter_layout();
  const auto violations = fe::run_drc(layout, fe::cnt_process_rules());
  std::printf("DRC on inverter layout: %zu violations\n", violations.size());
  fe::Circuit netlist_a, netlist_b;
  netlist_a.add_vsource("vdd", "0", fe::Waveform::make_dc(3.0));
  netlist_a.add_vsource("vss", "0", fe::Waveform::make_dc(-3.0));
  lib.add_inverter(netlist_a, "in", "out", "u0");
  netlist_b.add_vsource("vdd", "0", fe::Waveform::make_dc(3.0));
  netlist_b.add_vsource("vss", "0", fe::Waveform::make_dc(-3.0));
  lib.add_inverter(netlist_b, "a", "y", "cell");
  std::printf("LVS inverter vs inverter (renamed nodes): %s\n",
              fe::compare_netlists(netlist_a, netlist_b).equivalent
                  ? "equivalent"
                  : "MISMATCH");

  // 5. Yield.
  Table yield_table({"s-CNT purity", "TFT yield", "304-TFT SR yield"});
  for (double purity : {0.999, 0.9999, 0.99997}) {
    fe::CntProcess proc;
    proc.purity = purity;
    yield_table.add_row({strformat("%.5f", purity),
                         strformat("%.4f", fe::tft_yield(proc)),
                         strformat("%.4f", fe::circuit_yield(proc, 304))});
  }
  std::printf("\n%s\n", yield_table.to_text().c_str());

  // 6. Electrical scan + CS decode.
  data::ThermalHandGenerator generator;
  const la::Matrix frame = generator.sample(rng).values;
  const cs::SamplingPattern pattern = cs::random_pattern(32, 32, 0.5, rng);
  fe::SensorArrayOptions aopts;
  // The Pt RTD only swings ~6 % in current across the 25-40 C range, so
  // the relative current noise after the 28 dB near-sensor amplifier must
  // be small for a usable image (this is *why* the paper amplifies at the
  // sensor).
  aopts.read_noise = 2e-4;
  fe::SensorArraySim array(aopts);
  const la::Vector measurements =
      array.read_frame(frame, cs::make_scan_schedule(pattern), rng);
  const cs::Decoder decoder(32, 32);
  const la::Matrix recon = decoder.decode(pattern, measurements).frame;
  std::printf("electrical scan -> CS decode RMSE: %.4f\n",
              cs::rmse(recon, frame));
  return 0;
}
