// Tactile object recognition with and without compressed sensing
// (the paper's second case study, Sec. 4.2).
//
// Trains the mini-ResNet on synthetic glove frames, then compares
// classification accuracy on (a) clean frames, (b) frames with sparse
// errors, and (c) CS reconstructions of the corrupted frames.
//
// Usage: ./build/examples/tactile_recognition [num_classes] [epochs]
// The default (8 classes, 15 epochs) runs in under a minute; the full
// 26-class study lives in bench/bench_fig6b_tactile.
#include <cstdio>
#include <cstdlib>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "cs/pipeline.hpp"
#include "data/tactile.hpp"
#include "ml/trainer.hpp"

int main(int argc, char** argv) {
  using namespace flexcs;
  const int num_classes = argc > 1 ? std::atoi(argv[1]) : 8;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 15;
  Rng rng(42);

  // Build a balanced train/test split.
  data::TactileGenerator generator;
  data::Dataset train, test;
  train.rows = test.rows = train.cols = test.cols = 32;
  train.num_classes = test.num_classes = num_classes;
  for (int c = 0; c < num_classes; ++c) {
    for (int i = 0; i < 14; ++i)
      train.frames.push_back(generator.sample_class(c, rng));
    for (int i = 0; i < 5; ++i)
      test.frames.push_back(generator.sample_class(c, rng));
  }
  std::printf("training on %zu frames, testing on %zu (%d classes)\n",
              train.size(), test.size(), num_classes);

  ml::Network net = ml::make_mini_resnet(32, num_classes, rng);
  ml::TrainOptions topts;
  topts.epochs = epochs;
  topts.adam.lr = 2e-3;
  topts.augment_defect_rate = 0.08;
  topts.verbose = true;
  const ml::TrainResult tr = ml::train_classifier(net, train, test, topts, rng);
  std::printf("best validation accuracy: %.3f\n\n", tr.best_val_accuracy);

  // Evaluate under 10 % sparse errors, with and without CS recovery.
  const cs::Encoder encoder;
  const cs::Decoder decoder(32, 32);
  cs::DefectOptions dopts;
  dopts.rate = 0.10;

  std::vector<la::Matrix> clean, corrupted, reconstructed;
  std::vector<int> labels;
  for (const auto& f : test.frames) {
    const cs::CorruptedFrame cf = cs::inject_defects(f.values, dopts, rng);
    clean.push_back(f.values);
    corrupted.push_back(cf.values);
    reconstructed.push_back(
        cs::reconstruct_oracle(cf, 0.5, encoder, decoder, rng));
    labels.push_back(f.label);
  }

  Table table({"input", "accuracy"});
  table.add_row({"clean frames",
                 strformat("%.3f",
                           ml::evaluate_frames(net, clean, labels).accuracy)});
  table.add_row(
      {"10% sparse errors, no CS",
       strformat("%.3f",
                 ml::evaluate_frames(net, corrupted, labels).accuracy)});
  table.add_row(
      {"10% sparse errors, CS @ 50%",
       strformat("%.3f",
                 ml::evaluate_frames(net, reconstructed, labels).accuracy)});
  std::printf("%s\n", table.to_text().c_str());
  return 0;
}
