// Temperature-imaging robustness demo (the paper's headline result): with
// ~10 % of pixels defective, using the raw array gives RMSE ~0.2 while the
// CS pipeline that excludes tested-bad pixels recovers RMSE ~0.05.
//
// Usage: ./build/examples/temperature_imaging [defect_rate] [sampling]
#include <cstdio>
#include <cstdlib>

#include "common/pgm.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "cs/metrics.hpp"
#include "cs/pipeline.hpp"
#include "data/thermal.hpp"

int main(int argc, char** argv) {
  using namespace flexcs;
  const double defect_rate = argc > 1 ? std::atof(argv[1]) : 0.10;
  const double sampling = argc > 2 ? std::atof(argv[2]) : 0.5;
  Rng rng(7);

  data::ThermalHandGenerator generator;
  const la::Matrix truth = generator.sample(rng).values;

  // Inject the paper's sparse-error model: stuck-at-0/1 pixels.
  cs::DefectOptions dopts;
  dopts.rate = defect_rate;
  const cs::CorruptedFrame corrupted = cs::inject_defects(truth, dopts, rng);
  std::printf("injected %zu defective pixels (%.0f %% of the array)\n",
              corrupted.defect_count, 100.0 * defect_rate);

  // Baseline: use the defective frame directly.
  const double rmse_no_cs = cs::rmse(corrupted.values, truth);

  // CS pipeline: test identifies the bad pixels; sample only good ones.
  const cs::Encoder encoder;
  const cs::Decoder decoder(32, 32);
  const la::Matrix recon =
      cs::reconstruct_oracle(corrupted, sampling, encoder, decoder, rng);
  const double rmse_cs = cs::rmse(recon, truth);

  Table table({"approach", "RMSE", "PSNR (dB)"});
  table.add_row({"raw readout (no CS)", strformat("%.4f", rmse_no_cs),
                 strformat("%.1f", cs::psnr(truth, corrupted.values))});
  table.add_row({strformat("CS @ %.0f%% sampling", 100.0 * sampling),
                 strformat("%.4f", rmse_cs),
                 strformat("%.1f", cs::psnr(truth, recon))});
  std::printf("\n%s\n", table.to_text().c_str());

  auto dump = [](const char* path, const la::Matrix& m) {
    GrayImage img{m.rows(), m.cols(),
                  std::vector<double>(m.data(), m.data() + m.size())};
    write_pgm(path, img);
  };
  dump("temp_truth.pgm", truth);
  dump("temp_defective.pgm", corrupted.values);
  dump("temp_reconstructed.pgm", recon);
  std::printf("wrote temp_truth.pgm / temp_defective.pgm / "
              "temp_reconstructed.pgm\n");
  return 0;
}
