file(REMOVE_RECURSE
  "CMakeFiles/flexcs_dsp.dir/basis.cpp.o"
  "CMakeFiles/flexcs_dsp.dir/basis.cpp.o.d"
  "CMakeFiles/flexcs_dsp.dir/dct.cpp.o"
  "CMakeFiles/flexcs_dsp.dir/dct.cpp.o.d"
  "CMakeFiles/flexcs_dsp.dir/sparsity.cpp.o"
  "CMakeFiles/flexcs_dsp.dir/sparsity.cpp.o.d"
  "CMakeFiles/flexcs_dsp.dir/wavelet.cpp.o"
  "CMakeFiles/flexcs_dsp.dir/wavelet.cpp.o.d"
  "libflexcs_dsp.a"
  "libflexcs_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexcs_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
