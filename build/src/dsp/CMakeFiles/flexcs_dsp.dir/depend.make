# Empty dependencies file for flexcs_dsp.
# This may be replaced when dependencies are built.
