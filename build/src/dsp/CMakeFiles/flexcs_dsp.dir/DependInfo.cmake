
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/basis.cpp" "src/dsp/CMakeFiles/flexcs_dsp.dir/basis.cpp.o" "gcc" "src/dsp/CMakeFiles/flexcs_dsp.dir/basis.cpp.o.d"
  "/root/repo/src/dsp/dct.cpp" "src/dsp/CMakeFiles/flexcs_dsp.dir/dct.cpp.o" "gcc" "src/dsp/CMakeFiles/flexcs_dsp.dir/dct.cpp.o.d"
  "/root/repo/src/dsp/sparsity.cpp" "src/dsp/CMakeFiles/flexcs_dsp.dir/sparsity.cpp.o" "gcc" "src/dsp/CMakeFiles/flexcs_dsp.dir/sparsity.cpp.o.d"
  "/root/repo/src/dsp/wavelet.cpp" "src/dsp/CMakeFiles/flexcs_dsp.dir/wavelet.cpp.o" "gcc" "src/dsp/CMakeFiles/flexcs_dsp.dir/wavelet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/flexcs_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexcs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
