file(REMOVE_RECURSE
  "libflexcs_dsp.a"
)
