file(REMOVE_RECURSE
  "CMakeFiles/flexcs_fe.dir/amplifier.cpp.o"
  "CMakeFiles/flexcs_fe.dir/amplifier.cpp.o.d"
  "CMakeFiles/flexcs_fe.dir/cells.cpp.o"
  "CMakeFiles/flexcs_fe.dir/cells.cpp.o.d"
  "CMakeFiles/flexcs_fe.dir/digital.cpp.o"
  "CMakeFiles/flexcs_fe.dir/digital.cpp.o.d"
  "CMakeFiles/flexcs_fe.dir/drc.cpp.o"
  "CMakeFiles/flexcs_fe.dir/drc.cpp.o.d"
  "CMakeFiles/flexcs_fe.dir/lvs.cpp.o"
  "CMakeFiles/flexcs_fe.dir/lvs.cpp.o.d"
  "CMakeFiles/flexcs_fe.dir/netlist.cpp.o"
  "CMakeFiles/flexcs_fe.dir/netlist.cpp.o.d"
  "CMakeFiles/flexcs_fe.dir/sensor_array.cpp.o"
  "CMakeFiles/flexcs_fe.dir/sensor_array.cpp.o.d"
  "CMakeFiles/flexcs_fe.dir/shift_register.cpp.o"
  "CMakeFiles/flexcs_fe.dir/shift_register.cpp.o.d"
  "CMakeFiles/flexcs_fe.dir/sim.cpp.o"
  "CMakeFiles/flexcs_fe.dir/sim.cpp.o.d"
  "CMakeFiles/flexcs_fe.dir/tft.cpp.o"
  "CMakeFiles/flexcs_fe.dir/tft.cpp.o.d"
  "CMakeFiles/flexcs_fe.dir/variation.cpp.o"
  "CMakeFiles/flexcs_fe.dir/variation.cpp.o.d"
  "CMakeFiles/flexcs_fe.dir/yield.cpp.o"
  "CMakeFiles/flexcs_fe.dir/yield.cpp.o.d"
  "libflexcs_fe.a"
  "libflexcs_fe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexcs_fe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
