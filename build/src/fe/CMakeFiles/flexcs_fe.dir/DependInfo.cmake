
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fe/amplifier.cpp" "src/fe/CMakeFiles/flexcs_fe.dir/amplifier.cpp.o" "gcc" "src/fe/CMakeFiles/flexcs_fe.dir/amplifier.cpp.o.d"
  "/root/repo/src/fe/cells.cpp" "src/fe/CMakeFiles/flexcs_fe.dir/cells.cpp.o" "gcc" "src/fe/CMakeFiles/flexcs_fe.dir/cells.cpp.o.d"
  "/root/repo/src/fe/digital.cpp" "src/fe/CMakeFiles/flexcs_fe.dir/digital.cpp.o" "gcc" "src/fe/CMakeFiles/flexcs_fe.dir/digital.cpp.o.d"
  "/root/repo/src/fe/drc.cpp" "src/fe/CMakeFiles/flexcs_fe.dir/drc.cpp.o" "gcc" "src/fe/CMakeFiles/flexcs_fe.dir/drc.cpp.o.d"
  "/root/repo/src/fe/lvs.cpp" "src/fe/CMakeFiles/flexcs_fe.dir/lvs.cpp.o" "gcc" "src/fe/CMakeFiles/flexcs_fe.dir/lvs.cpp.o.d"
  "/root/repo/src/fe/netlist.cpp" "src/fe/CMakeFiles/flexcs_fe.dir/netlist.cpp.o" "gcc" "src/fe/CMakeFiles/flexcs_fe.dir/netlist.cpp.o.d"
  "/root/repo/src/fe/sensor_array.cpp" "src/fe/CMakeFiles/flexcs_fe.dir/sensor_array.cpp.o" "gcc" "src/fe/CMakeFiles/flexcs_fe.dir/sensor_array.cpp.o.d"
  "/root/repo/src/fe/shift_register.cpp" "src/fe/CMakeFiles/flexcs_fe.dir/shift_register.cpp.o" "gcc" "src/fe/CMakeFiles/flexcs_fe.dir/shift_register.cpp.o.d"
  "/root/repo/src/fe/sim.cpp" "src/fe/CMakeFiles/flexcs_fe.dir/sim.cpp.o" "gcc" "src/fe/CMakeFiles/flexcs_fe.dir/sim.cpp.o.d"
  "/root/repo/src/fe/tft.cpp" "src/fe/CMakeFiles/flexcs_fe.dir/tft.cpp.o" "gcc" "src/fe/CMakeFiles/flexcs_fe.dir/tft.cpp.o.d"
  "/root/repo/src/fe/variation.cpp" "src/fe/CMakeFiles/flexcs_fe.dir/variation.cpp.o" "gcc" "src/fe/CMakeFiles/flexcs_fe.dir/variation.cpp.o.d"
  "/root/repo/src/fe/yield.cpp" "src/fe/CMakeFiles/flexcs_fe.dir/yield.cpp.o" "gcc" "src/fe/CMakeFiles/flexcs_fe.dir/yield.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/flexcs_la.dir/DependInfo.cmake"
  "/root/repo/build/src/cs/CMakeFiles/flexcs_cs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexcs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/flexcs_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/rpca/CMakeFiles/flexcs_rpca.dir/DependInfo.cmake"
  "/root/repo/build/src/solvers/CMakeFiles/flexcs_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/flexcs_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
