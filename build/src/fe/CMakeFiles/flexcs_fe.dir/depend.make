# Empty dependencies file for flexcs_fe.
# This may be replaced when dependencies are built.
