file(REMOVE_RECURSE
  "libflexcs_fe.a"
)
