# Empty dependencies file for flexcs_common.
# This may be replaced when dependencies are built.
