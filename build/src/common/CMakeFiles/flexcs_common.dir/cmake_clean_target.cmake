file(REMOVE_RECURSE
  "libflexcs_common.a"
)
