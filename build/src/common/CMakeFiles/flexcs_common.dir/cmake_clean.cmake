file(REMOVE_RECURSE
  "CMakeFiles/flexcs_common.dir/pgm.cpp.o"
  "CMakeFiles/flexcs_common.dir/pgm.cpp.o.d"
  "CMakeFiles/flexcs_common.dir/rng.cpp.o"
  "CMakeFiles/flexcs_common.dir/rng.cpp.o.d"
  "CMakeFiles/flexcs_common.dir/strings.cpp.o"
  "CMakeFiles/flexcs_common.dir/strings.cpp.o.d"
  "CMakeFiles/flexcs_common.dir/table.cpp.o"
  "CMakeFiles/flexcs_common.dir/table.cpp.o.d"
  "libflexcs_common.a"
  "libflexcs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexcs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
