# Empty dependencies file for flexcs_la.
# This may be replaced when dependencies are built.
