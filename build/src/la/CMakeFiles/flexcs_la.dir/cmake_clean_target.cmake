file(REMOVE_RECURSE
  "libflexcs_la.a"
)
