file(REMOVE_RECURSE
  "CMakeFiles/flexcs_la.dir/decomp.cpp.o"
  "CMakeFiles/flexcs_la.dir/decomp.cpp.o.d"
  "CMakeFiles/flexcs_la.dir/matrix.cpp.o"
  "CMakeFiles/flexcs_la.dir/matrix.cpp.o.d"
  "CMakeFiles/flexcs_la.dir/svd.cpp.o"
  "CMakeFiles/flexcs_la.dir/svd.cpp.o.d"
  "libflexcs_la.a"
  "libflexcs_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexcs_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
