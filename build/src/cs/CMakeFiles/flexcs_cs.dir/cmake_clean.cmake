file(REMOVE_RECURSE
  "CMakeFiles/flexcs_cs.dir/decoder.cpp.o"
  "CMakeFiles/flexcs_cs.dir/decoder.cpp.o.d"
  "CMakeFiles/flexcs_cs.dir/defects.cpp.o"
  "CMakeFiles/flexcs_cs.dir/defects.cpp.o.d"
  "CMakeFiles/flexcs_cs.dir/encoder.cpp.o"
  "CMakeFiles/flexcs_cs.dir/encoder.cpp.o.d"
  "CMakeFiles/flexcs_cs.dir/metrics.cpp.o"
  "CMakeFiles/flexcs_cs.dir/metrics.cpp.o.d"
  "CMakeFiles/flexcs_cs.dir/pipeline.cpp.o"
  "CMakeFiles/flexcs_cs.dir/pipeline.cpp.o.d"
  "CMakeFiles/flexcs_cs.dir/sampling.cpp.o"
  "CMakeFiles/flexcs_cs.dir/sampling.cpp.o.d"
  "CMakeFiles/flexcs_cs.dir/theory.cpp.o"
  "CMakeFiles/flexcs_cs.dir/theory.cpp.o.d"
  "libflexcs_cs.a"
  "libflexcs_cs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexcs_cs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
