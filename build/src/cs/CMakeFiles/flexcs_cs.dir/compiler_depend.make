# Empty compiler generated dependencies file for flexcs_cs.
# This may be replaced when dependencies are built.
