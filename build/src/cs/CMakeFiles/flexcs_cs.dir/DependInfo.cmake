
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cs/decoder.cpp" "src/cs/CMakeFiles/flexcs_cs.dir/decoder.cpp.o" "gcc" "src/cs/CMakeFiles/flexcs_cs.dir/decoder.cpp.o.d"
  "/root/repo/src/cs/defects.cpp" "src/cs/CMakeFiles/flexcs_cs.dir/defects.cpp.o" "gcc" "src/cs/CMakeFiles/flexcs_cs.dir/defects.cpp.o.d"
  "/root/repo/src/cs/encoder.cpp" "src/cs/CMakeFiles/flexcs_cs.dir/encoder.cpp.o" "gcc" "src/cs/CMakeFiles/flexcs_cs.dir/encoder.cpp.o.d"
  "/root/repo/src/cs/metrics.cpp" "src/cs/CMakeFiles/flexcs_cs.dir/metrics.cpp.o" "gcc" "src/cs/CMakeFiles/flexcs_cs.dir/metrics.cpp.o.d"
  "/root/repo/src/cs/pipeline.cpp" "src/cs/CMakeFiles/flexcs_cs.dir/pipeline.cpp.o" "gcc" "src/cs/CMakeFiles/flexcs_cs.dir/pipeline.cpp.o.d"
  "/root/repo/src/cs/sampling.cpp" "src/cs/CMakeFiles/flexcs_cs.dir/sampling.cpp.o" "gcc" "src/cs/CMakeFiles/flexcs_cs.dir/sampling.cpp.o.d"
  "/root/repo/src/cs/theory.cpp" "src/cs/CMakeFiles/flexcs_cs.dir/theory.cpp.o" "gcc" "src/cs/CMakeFiles/flexcs_cs.dir/theory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/flexcs_la.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/flexcs_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/solvers/CMakeFiles/flexcs_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/rpca/CMakeFiles/flexcs_rpca.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexcs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/flexcs_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
