file(REMOVE_RECURSE
  "libflexcs_cs.a"
)
