file(REMOVE_RECURSE
  "libflexcs_ml.a"
)
