file(REMOVE_RECURSE
  "CMakeFiles/flexcs_ml.dir/layers.cpp.o"
  "CMakeFiles/flexcs_ml.dir/layers.cpp.o.d"
  "CMakeFiles/flexcs_ml.dir/network.cpp.o"
  "CMakeFiles/flexcs_ml.dir/network.cpp.o.d"
  "CMakeFiles/flexcs_ml.dir/optimizer.cpp.o"
  "CMakeFiles/flexcs_ml.dir/optimizer.cpp.o.d"
  "CMakeFiles/flexcs_ml.dir/tensor.cpp.o"
  "CMakeFiles/flexcs_ml.dir/tensor.cpp.o.d"
  "CMakeFiles/flexcs_ml.dir/trainer.cpp.o"
  "CMakeFiles/flexcs_ml.dir/trainer.cpp.o.d"
  "libflexcs_ml.a"
  "libflexcs_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexcs_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
