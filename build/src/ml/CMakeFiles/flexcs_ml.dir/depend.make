# Empty dependencies file for flexcs_ml.
# This may be replaced when dependencies are built.
