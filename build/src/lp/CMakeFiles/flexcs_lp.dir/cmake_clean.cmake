file(REMOVE_RECURSE
  "CMakeFiles/flexcs_lp.dir/simplex.cpp.o"
  "CMakeFiles/flexcs_lp.dir/simplex.cpp.o.d"
  "libflexcs_lp.a"
  "libflexcs_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexcs_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
