# Empty dependencies file for flexcs_lp.
# This may be replaced when dependencies are built.
