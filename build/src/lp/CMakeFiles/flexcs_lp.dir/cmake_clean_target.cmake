file(REMOVE_RECURSE
  "libflexcs_lp.a"
)
