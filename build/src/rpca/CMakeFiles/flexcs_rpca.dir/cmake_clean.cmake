file(REMOVE_RECURSE
  "CMakeFiles/flexcs_rpca.dir/rpca.cpp.o"
  "CMakeFiles/flexcs_rpca.dir/rpca.cpp.o.d"
  "libflexcs_rpca.a"
  "libflexcs_rpca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexcs_rpca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
