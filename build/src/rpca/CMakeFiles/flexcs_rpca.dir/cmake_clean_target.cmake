file(REMOVE_RECURSE
  "libflexcs_rpca.a"
)
