# Empty compiler generated dependencies file for flexcs_rpca.
# This may be replaced when dependencies are built.
