file(REMOVE_RECURSE
  "CMakeFiles/flexcs_solvers.dir/admm.cpp.o"
  "CMakeFiles/flexcs_solvers.dir/admm.cpp.o.d"
  "CMakeFiles/flexcs_solvers.dir/bp_lp.cpp.o"
  "CMakeFiles/flexcs_solvers.dir/bp_lp.cpp.o.d"
  "CMakeFiles/flexcs_solvers.dir/cosamp.cpp.o"
  "CMakeFiles/flexcs_solvers.dir/cosamp.cpp.o.d"
  "CMakeFiles/flexcs_solvers.dir/fista.cpp.o"
  "CMakeFiles/flexcs_solvers.dir/fista.cpp.o.d"
  "CMakeFiles/flexcs_solvers.dir/irls.cpp.o"
  "CMakeFiles/flexcs_solvers.dir/irls.cpp.o.d"
  "CMakeFiles/flexcs_solvers.dir/omp.cpp.o"
  "CMakeFiles/flexcs_solvers.dir/omp.cpp.o.d"
  "CMakeFiles/flexcs_solvers.dir/solver.cpp.o"
  "CMakeFiles/flexcs_solvers.dir/solver.cpp.o.d"
  "libflexcs_solvers.a"
  "libflexcs_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexcs_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
