# Empty compiler generated dependencies file for flexcs_solvers.
# This may be replaced when dependencies are built.
