
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solvers/admm.cpp" "src/solvers/CMakeFiles/flexcs_solvers.dir/admm.cpp.o" "gcc" "src/solvers/CMakeFiles/flexcs_solvers.dir/admm.cpp.o.d"
  "/root/repo/src/solvers/bp_lp.cpp" "src/solvers/CMakeFiles/flexcs_solvers.dir/bp_lp.cpp.o" "gcc" "src/solvers/CMakeFiles/flexcs_solvers.dir/bp_lp.cpp.o.d"
  "/root/repo/src/solvers/cosamp.cpp" "src/solvers/CMakeFiles/flexcs_solvers.dir/cosamp.cpp.o" "gcc" "src/solvers/CMakeFiles/flexcs_solvers.dir/cosamp.cpp.o.d"
  "/root/repo/src/solvers/fista.cpp" "src/solvers/CMakeFiles/flexcs_solvers.dir/fista.cpp.o" "gcc" "src/solvers/CMakeFiles/flexcs_solvers.dir/fista.cpp.o.d"
  "/root/repo/src/solvers/irls.cpp" "src/solvers/CMakeFiles/flexcs_solvers.dir/irls.cpp.o" "gcc" "src/solvers/CMakeFiles/flexcs_solvers.dir/irls.cpp.o.d"
  "/root/repo/src/solvers/omp.cpp" "src/solvers/CMakeFiles/flexcs_solvers.dir/omp.cpp.o" "gcc" "src/solvers/CMakeFiles/flexcs_solvers.dir/omp.cpp.o.d"
  "/root/repo/src/solvers/solver.cpp" "src/solvers/CMakeFiles/flexcs_solvers.dir/solver.cpp.o" "gcc" "src/solvers/CMakeFiles/flexcs_solvers.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/flexcs_la.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/flexcs_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexcs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
