file(REMOVE_RECURSE
  "libflexcs_solvers.a"
)
