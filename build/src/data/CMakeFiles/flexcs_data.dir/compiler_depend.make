# Empty compiler generated dependencies file for flexcs_data.
# This may be replaced when dependencies are built.
