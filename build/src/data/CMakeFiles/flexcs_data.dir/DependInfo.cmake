
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/flexcs_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/flexcs_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/shapes.cpp" "src/data/CMakeFiles/flexcs_data.dir/shapes.cpp.o" "gcc" "src/data/CMakeFiles/flexcs_data.dir/shapes.cpp.o.d"
  "/root/repo/src/data/tactile.cpp" "src/data/CMakeFiles/flexcs_data.dir/tactile.cpp.o" "gcc" "src/data/CMakeFiles/flexcs_data.dir/tactile.cpp.o.d"
  "/root/repo/src/data/thermal.cpp" "src/data/CMakeFiles/flexcs_data.dir/thermal.cpp.o" "gcc" "src/data/CMakeFiles/flexcs_data.dir/thermal.cpp.o.d"
  "/root/repo/src/data/ultrasound.cpp" "src/data/CMakeFiles/flexcs_data.dir/ultrasound.cpp.o" "gcc" "src/data/CMakeFiles/flexcs_data.dir/ultrasound.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/flexcs_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexcs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
