file(REMOVE_RECURSE
  "libflexcs_data.a"
)
