file(REMOVE_RECURSE
  "CMakeFiles/flexcs_data.dir/dataset.cpp.o"
  "CMakeFiles/flexcs_data.dir/dataset.cpp.o.d"
  "CMakeFiles/flexcs_data.dir/shapes.cpp.o"
  "CMakeFiles/flexcs_data.dir/shapes.cpp.o.d"
  "CMakeFiles/flexcs_data.dir/tactile.cpp.o"
  "CMakeFiles/flexcs_data.dir/tactile.cpp.o.d"
  "CMakeFiles/flexcs_data.dir/thermal.cpp.o"
  "CMakeFiles/flexcs_data.dir/thermal.cpp.o.d"
  "CMakeFiles/flexcs_data.dir/ultrasound.cpp.o"
  "CMakeFiles/flexcs_data.dir/ultrasound.cpp.o.d"
  "libflexcs_data.a"
  "libflexcs_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexcs_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
