# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;flexcs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_la "/root/repo/build/tests/test_la")
set_tests_properties(test_la PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;12;flexcs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_dsp "/root/repo/build/tests/test_dsp")
set_tests_properties(test_dsp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;13;flexcs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_lp "/root/repo/build/tests/test_lp")
set_tests_properties(test_lp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;14;flexcs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_solvers "/root/repo/build/tests/test_solvers")
set_tests_properties(test_solvers PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;15;flexcs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_rpca "/root/repo/build/tests/test_rpca")
set_tests_properties(test_rpca PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;16;flexcs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_data "/root/repo/build/tests/test_data")
set_tests_properties(test_data PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;17;flexcs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cs "/root/repo/build/tests/test_cs")
set_tests_properties(test_cs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;18;flexcs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_fe "/root/repo/build/tests/test_fe")
set_tests_properties(test_fe PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;19;flexcs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_ml "/root/repo/build/tests/test_ml")
set_tests_properties(test_ml PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;21;flexcs_add_test;/root/repo/tests/CMakeLists.txt;0;")
