
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_data.cpp" "tests/CMakeFiles/test_data.dir/test_data.cpp.o" "gcc" "tests/CMakeFiles/test_data.dir/test_data.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cs/CMakeFiles/flexcs_cs.dir/DependInfo.cmake"
  "/root/repo/build/src/solvers/CMakeFiles/flexcs_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/rpca/CMakeFiles/flexcs_rpca.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/flexcs_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/flexcs_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/flexcs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/flexcs_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexcs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
