file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/test_pgm.cpp.o"
  "CMakeFiles/test_common.dir/test_pgm.cpp.o.d"
  "CMakeFiles/test_common.dir/test_rng.cpp.o"
  "CMakeFiles/test_common.dir/test_rng.cpp.o.d"
  "CMakeFiles/test_common.dir/test_strings.cpp.o"
  "CMakeFiles/test_common.dir/test_strings.cpp.o.d"
  "CMakeFiles/test_common.dir/test_table.cpp.o"
  "CMakeFiles/test_common.dir/test_table.cpp.o.d"
  "test_common"
  "test_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
