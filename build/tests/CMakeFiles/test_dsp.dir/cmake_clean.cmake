file(REMOVE_RECURSE
  "CMakeFiles/test_dsp.dir/test_basis.cpp.o"
  "CMakeFiles/test_dsp.dir/test_basis.cpp.o.d"
  "CMakeFiles/test_dsp.dir/test_dct.cpp.o"
  "CMakeFiles/test_dsp.dir/test_dct.cpp.o.d"
  "CMakeFiles/test_dsp.dir/test_sparsity.cpp.o"
  "CMakeFiles/test_dsp.dir/test_sparsity.cpp.o.d"
  "CMakeFiles/test_dsp.dir/test_wavelet.cpp.o"
  "CMakeFiles/test_dsp.dir/test_wavelet.cpp.o.d"
  "test_dsp"
  "test_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
