file(REMOVE_RECURSE
  "CMakeFiles/test_la.dir/test_decomp.cpp.o"
  "CMakeFiles/test_la.dir/test_decomp.cpp.o.d"
  "CMakeFiles/test_la.dir/test_matrix.cpp.o"
  "CMakeFiles/test_la.dir/test_matrix.cpp.o.d"
  "CMakeFiles/test_la.dir/test_svd.cpp.o"
  "CMakeFiles/test_la.dir/test_svd.cpp.o.d"
  "test_la"
  "test_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
