file(REMOVE_RECURSE
  "CMakeFiles/test_fe.dir/test_cells.cpp.o"
  "CMakeFiles/test_fe.dir/test_cells.cpp.o.d"
  "CMakeFiles/test_fe.dir/test_digital.cpp.o"
  "CMakeFiles/test_fe.dir/test_digital.cpp.o.d"
  "CMakeFiles/test_fe.dir/test_drc_lvs.cpp.o"
  "CMakeFiles/test_fe.dir/test_drc_lvs.cpp.o.d"
  "CMakeFiles/test_fe.dir/test_sensor_array.cpp.o"
  "CMakeFiles/test_fe.dir/test_sensor_array.cpp.o.d"
  "CMakeFiles/test_fe.dir/test_sim.cpp.o"
  "CMakeFiles/test_fe.dir/test_sim.cpp.o.d"
  "CMakeFiles/test_fe.dir/test_sr_amp.cpp.o"
  "CMakeFiles/test_fe.dir/test_sr_amp.cpp.o.d"
  "CMakeFiles/test_fe.dir/test_tft.cpp.o"
  "CMakeFiles/test_fe.dir/test_tft.cpp.o.d"
  "CMakeFiles/test_fe.dir/test_variation.cpp.o"
  "CMakeFiles/test_fe.dir/test_variation.cpp.o.d"
  "CMakeFiles/test_fe.dir/test_yield.cpp.o"
  "CMakeFiles/test_fe.dir/test_yield.cpp.o.d"
  "test_fe"
  "test_fe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
