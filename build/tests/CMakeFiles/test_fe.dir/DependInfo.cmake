
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cells.cpp" "tests/CMakeFiles/test_fe.dir/test_cells.cpp.o" "gcc" "tests/CMakeFiles/test_fe.dir/test_cells.cpp.o.d"
  "/root/repo/tests/test_digital.cpp" "tests/CMakeFiles/test_fe.dir/test_digital.cpp.o" "gcc" "tests/CMakeFiles/test_fe.dir/test_digital.cpp.o.d"
  "/root/repo/tests/test_drc_lvs.cpp" "tests/CMakeFiles/test_fe.dir/test_drc_lvs.cpp.o" "gcc" "tests/CMakeFiles/test_fe.dir/test_drc_lvs.cpp.o.d"
  "/root/repo/tests/test_sensor_array.cpp" "tests/CMakeFiles/test_fe.dir/test_sensor_array.cpp.o" "gcc" "tests/CMakeFiles/test_fe.dir/test_sensor_array.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/test_fe.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/test_fe.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_sr_amp.cpp" "tests/CMakeFiles/test_fe.dir/test_sr_amp.cpp.o" "gcc" "tests/CMakeFiles/test_fe.dir/test_sr_amp.cpp.o.d"
  "/root/repo/tests/test_tft.cpp" "tests/CMakeFiles/test_fe.dir/test_tft.cpp.o" "gcc" "tests/CMakeFiles/test_fe.dir/test_tft.cpp.o.d"
  "/root/repo/tests/test_variation.cpp" "tests/CMakeFiles/test_fe.dir/test_variation.cpp.o" "gcc" "tests/CMakeFiles/test_fe.dir/test_variation.cpp.o.d"
  "/root/repo/tests/test_yield.cpp" "tests/CMakeFiles/test_fe.dir/test_yield.cpp.o" "gcc" "tests/CMakeFiles/test_fe.dir/test_yield.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cs/CMakeFiles/flexcs_cs.dir/DependInfo.cmake"
  "/root/repo/build/src/solvers/CMakeFiles/flexcs_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/rpca/CMakeFiles/flexcs_rpca.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/flexcs_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/flexcs_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/flexcs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/flexcs_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexcs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fe/CMakeFiles/flexcs_fe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
