file(REMOVE_RECURSE
  "CMakeFiles/test_cs.dir/test_codec.cpp.o"
  "CMakeFiles/test_cs.dir/test_codec.cpp.o.d"
  "CMakeFiles/test_cs.dir/test_cs_properties.cpp.o"
  "CMakeFiles/test_cs.dir/test_cs_properties.cpp.o.d"
  "CMakeFiles/test_cs.dir/test_defects.cpp.o"
  "CMakeFiles/test_cs.dir/test_defects.cpp.o.d"
  "CMakeFiles/test_cs.dir/test_metrics.cpp.o"
  "CMakeFiles/test_cs.dir/test_metrics.cpp.o.d"
  "CMakeFiles/test_cs.dir/test_pipeline.cpp.o"
  "CMakeFiles/test_cs.dir/test_pipeline.cpp.o.d"
  "CMakeFiles/test_cs.dir/test_sampling.cpp.o"
  "CMakeFiles/test_cs.dir/test_sampling.cpp.o.d"
  "CMakeFiles/test_cs.dir/test_theory.cpp.o"
  "CMakeFiles/test_cs.dir/test_theory.cpp.o.d"
  "test_cs"
  "test_cs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
