file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_circuits.dir/bench_fig5_circuits.cpp.o"
  "CMakeFiles/bench_fig5_circuits.dir/bench_fig5_circuits.cpp.o.d"
  "bench_fig5_circuits"
  "bench_fig5_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
