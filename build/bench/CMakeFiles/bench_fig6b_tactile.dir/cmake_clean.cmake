file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6b_tactile.dir/bench_fig6b_tactile.cpp.o"
  "CMakeFiles/bench_fig6b_tactile.dir/bench_fig6b_tactile.cpp.o.d"
  "bench_fig6b_tactile"
  "bench_fig6b_tactile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6b_tactile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
