# Empty dependencies file for bench_fig6b_tactile.
# This may be replaced when dependencies are built.
