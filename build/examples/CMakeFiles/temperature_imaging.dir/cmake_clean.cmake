file(REMOVE_RECURSE
  "CMakeFiles/temperature_imaging.dir/temperature_imaging.cpp.o"
  "CMakeFiles/temperature_imaging.dir/temperature_imaging.cpp.o.d"
  "temperature_imaging"
  "temperature_imaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temperature_imaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
