# Empty dependencies file for temperature_imaging.
# This may be replaced when dependencies are built.
