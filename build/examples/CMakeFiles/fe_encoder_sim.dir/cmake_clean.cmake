file(REMOVE_RECURSE
  "CMakeFiles/fe_encoder_sim.dir/fe_encoder_sim.cpp.o"
  "CMakeFiles/fe_encoder_sim.dir/fe_encoder_sim.cpp.o.d"
  "fe_encoder_sim"
  "fe_encoder_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fe_encoder_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
