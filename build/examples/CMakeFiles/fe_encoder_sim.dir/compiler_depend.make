# Empty compiler generated dependencies file for fe_encoder_sim.
# This may be replaced when dependencies are built.
