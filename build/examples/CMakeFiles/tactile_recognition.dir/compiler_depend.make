# Empty compiler generated dependencies file for tactile_recognition.
# This may be replaced when dependencies are built.
