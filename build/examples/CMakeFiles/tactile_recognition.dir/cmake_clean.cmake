file(REMOVE_RECURSE
  "CMakeFiles/tactile_recognition.dir/tactile_recognition.cpp.o"
  "CMakeFiles/tactile_recognition.dir/tactile_recognition.cpp.o.d"
  "tactile_recognition"
  "tactile_recognition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tactile_recognition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
