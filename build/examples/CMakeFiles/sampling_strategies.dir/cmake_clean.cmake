file(REMOVE_RECURSE
  "CMakeFiles/sampling_strategies.dir/sampling_strategies.cpp.o"
  "CMakeFiles/sampling_strategies.dir/sampling_strategies.cpp.o.d"
  "sampling_strategies"
  "sampling_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
