# Empty compiler generated dependencies file for sampling_strategies.
# This may be replaced when dependencies are built.
