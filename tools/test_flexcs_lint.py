#!/usr/bin/env python3
"""Selftest for flexcs_lint: proves every rule fires on a known-bad fixture
and stays quiet on the equivalent clean code. Runs as the ctest
`lint.selftest` and standalone (`python3 tools/test_flexcs_lint.py`)."""

from __future__ import annotations

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import flexcs_lint  # noqa: E402


def lint_fixture(tree: dict) -> list:
    """Writes {relpath: content} into a temp dir and lints it."""
    with tempfile.TemporaryDirectory() as td:
        root = Path(td)
        for rel, content in tree.items():
            p = root / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(content)
        return flexcs_lint.lint_tree(root)


def rules_fired(findings: list) -> set:
    return {f.rule for f in findings}


class StripTest(unittest.TestCase):
    def test_comments_and_strings_blanked(self):
        src = 'int x; // new delete\n/* std::rand */ const char* s = "new";\n'
        out = flexcs_lint.strip_comments_and_strings(src)
        self.assertNotIn("new", out)
        self.assertNotIn("std::rand", out)
        self.assertEqual(src.count("\n"), out.count("\n"))

    def test_code_preserved_in_place(self):
        src = "a == 1.5; // tail\n"
        out = flexcs_lint.strip_comments_and_strings(src)
        self.assertTrue(out.startswith("a == 1.5; "))


class PragmaOnceTest(unittest.TestCase):
    def test_missing_pragma_fires(self):
        f = lint_fixture({"src/cs/bad.hpp": "int f();\n"})
        self.assertIn("pragma-once", rules_fired(f))

    def test_present_pragma_clean(self):
        f = lint_fixture({"src/cs/good.hpp": "// doc\n#pragma once\nint f();\n"})
        self.assertNotIn("pragma-once", rules_fired(f))

    def test_cpp_files_exempt(self):
        f = lint_fixture({"src/cs/impl.cpp": "int f() { return 1; }\n"})
        self.assertNotIn("pragma-once", rules_fired(f))


class UsingNamespaceTest(unittest.TestCase):
    def test_using_namespace_in_header_fires(self):
        f = lint_fixture(
            {"src/cs/bad.hpp": "#pragma once\nusing namespace std;\n"})
        self.assertIn("using-namespace", rules_fired(f))

    def test_using_namespace_in_cpp_allowed(self):
        f = lint_fixture({"tests/t.cpp": "using namespace flexcs;\n"})
        self.assertNotIn("using-namespace", rules_fired(f))

    def test_commented_mention_clean(self):
        f = lint_fixture(
            {"src/cs/ok.hpp": "#pragma once\n// never using namespace here\n"})
        self.assertNotIn("using-namespace", rules_fired(f))


class RawNewDeleteTest(unittest.TestCase):
    def test_raw_new_fires_outside_la(self):
        f = lint_fixture({"src/cs/bad.cpp": "int* p = new int(3);\n"})
        self.assertIn("raw-new-delete", rules_fired(f))

    def test_raw_delete_fires_outside_la(self):
        f = lint_fixture({"src/cs/bad.cpp": "void g(int* p) { delete p; }\n"})
        self.assertIn("raw-new-delete", rules_fired(f))

    def test_la_module_exempt(self):
        f = lint_fixture({"src/la/pool.cpp": "int* p = new int(3);\n"})
        self.assertNotIn("raw-new-delete", rules_fired(f))

    def test_deleted_member_function_clean(self):
        src = "#pragma once\nstruct S { S(const S&) = delete;\n  void* operator new(unsigned long) = delete; };\n"
        f = lint_fixture({"src/cs/s.hpp": src})
        self.assertNotIn("raw-new-delete", rules_fired(f))

    def test_suppression_marker(self):
        src = "int* p = new int(3);  // flexcs-lint: allow(raw-new-delete)\n"
        f = lint_fixture({"src/cs/ok.cpp": src})
        self.assertNotIn("raw-new-delete", rules_fired(f))


class RngDisciplineTest(unittest.TestCase):
    def test_std_rand_fires(self):
        f = lint_fixture({"src/cs/bad.cpp": "int r = std::rand();\n"})
        self.assertIn("rng-discipline", rules_fired(f))

    def test_mt19937_fires(self):
        # Unseeded or seeded alike: all randomness must flow through
        # flexcs::Rng, so any direct std::mt19937 is out of contract.
        f = lint_fixture({"src/dsp/bad.cpp": "std::mt19937 gen;\n"})
        self.assertIn("rng-discipline", rules_fired(f))

    def test_random_device_fires(self):
        f = lint_fixture({"tests/bad.cpp": "std::random_device rd;\n"})
        self.assertIn("rng-discipline", rules_fired(f))

    def test_rng_module_exempt(self):
        f = lint_fixture({"src/common/rng.cpp": "// std::mt19937 notes\nint x;\n"})
        self.assertNotIn("rng-discipline", rules_fired(f))


class FloatEqualityTest(unittest.TestCase):
    def test_nonzero_literal_fires(self):
        f = lint_fixture({"src/cs/bad.cpp": "if (x == 1.5) {}\n"})
        self.assertIn("float-equality", rules_fired(f))

    def test_reversed_operands_fire(self):
        f = lint_fixture({"src/cs/bad.cpp": "if (0.5f != x) {}\n"})
        self.assertIn("float-equality", rules_fired(f))

    def test_exponent_literal_fires(self):
        f = lint_fixture({"src/cs/bad.cpp": "bool b = y != 1e-6;\n"})
        self.assertIn("float-equality", rules_fired(f))

    def test_exact_zero_allowed(self):
        f = lint_fixture({"src/cs/ok.cpp": "if (x == 0.0) {}\nif (0.0f != y) {}\n"})
        self.assertNotIn("float-equality", rules_fired(f))

    def test_relational_not_confused(self):
        f = lint_fixture({"src/cs/ok.cpp": "if (x <= 1.5 || x >= 2.5) {}\n"})
        self.assertNotIn("float-equality", rules_fired(f))

    def test_suppression_marker(self):
        src = "if (x == 1.5) {}  // flexcs-lint: allow(float-equality)\n"
        f = lint_fixture({"src/cs/ok.cpp": src})
        self.assertNotIn("float-equality", rules_fired(f))


class ThreadingTest(unittest.TestCase):
    def test_thread_outside_runtime_fires(self):
        f = lint_fixture({"src/cs/bad.cpp": "std::thread t([] {});\n"})
        self.assertIn("threading", rules_fired(f))

    def test_jthread_outside_runtime_fires(self):
        f = lint_fixture({"bench/bad.cpp": "std::jthread t([] {});\n"})
        self.assertIn("threading", rules_fired(f))

    def test_thread_inside_runtime_clean(self):
        f = lint_fixture({"src/runtime/ok.cpp": "std::thread t([] {});\n"})
        self.assertNotIn("threading", rules_fired(f))

    def test_this_thread_not_confused(self):
        f = lint_fixture(
            {"src/cs/ok.cpp": "std::this_thread::yield();\n"})
        self.assertNotIn("threading", rules_fired(f))

    def test_detach_fires_everywhere_even_in_runtime(self):
        f = lint_fixture({"src/runtime/bad.cpp": "worker.detach();\n"})
        self.assertIn("threading", rules_fired(f))

    def test_std_mutex_member_fires_even_with_comment(self):
        # The old rule accepted a "guards ..." comment; the contract upgrade
        # demands the annotated wrapper type so Clang TSA can verify it.
        src = ("#pragma once\n"
               "#include <mutex>\n"
               "class S {\n"
               "  // mu_ guards the queue and counters below.\n"
               "  mutable std::mutex mu_;\n"
               "};\n")
        f = lint_fixture({"src/runtime/bad.hpp": src})
        self.assertIn("threading", rules_fired(f))

    def test_wrapped_mutex_without_contract_fires(self):
        src = ("#pragma once\n"
               "#include \"common/annotations.hpp\"\n"
               "class S {\n"
               "  common::Mutex mu_;\n"
               "  int count_ = 0;\n"
               "};\n")
        f = lint_fixture({"src/runtime/bad.hpp": src})
        self.assertIn("threading", rules_fired(f))

    def test_wrapped_mutex_with_guarded_by_clean(self):
        src = ("#pragma once\n"
               "#include \"common/annotations.hpp\"\n"
               "class S {\n"
               "  mutable common::Mutex mu_;\n"
               "  int count_ FLEXCS_GUARDED_BY(mu_) = 0;\n"
               "};\n")
        f = lint_fixture({"src/runtime/ok.hpp": src})
        self.assertNotIn("threading", rules_fired(f))

    def test_wrapped_mutex_with_requires_clean(self):
        src = ("#pragma once\n"
               "#include \"common/annotations.hpp\"\n"
               "class S {\n"
               "  void step() FLEXCS_REQUIRES(mu_);\n"
               "  flexcs::common::Mutex mu_;\n"
               "};\n")
        f = lint_fixture({"src/runtime/ok.hpp": src})
        self.assertNotIn("threading", rules_fired(f))

    def test_excludes_alone_is_not_a_contract(self):
        src = ("#pragma once\n"
               "#include \"common/annotations.hpp\"\n"
               "class S {\n"
               "  void poll() FLEXCS_EXCLUDES(mu_);\n"
               "  common::Mutex mu_;\n"
               "};\n")
        f = lint_fixture({"src/runtime/bad.hpp": src})
        self.assertIn("threading", rules_fired(f))

    def test_mutex_in_cpp_not_required_to_have_contract(self):
        f = lint_fixture({"src/runtime/ok.cpp": "static std::mutex mu;\n"})
        self.assertNotIn("threading", rules_fired(f))

    def test_annotation_header_itself_exempt(self):
        src = ("#pragma once\n"
               "class Mutex {\n"
               "  std::mutex mu_;\n"
               "};\n")
        f = lint_fixture({"src/common/annotations.hpp": src})
        self.assertNotIn("threading", rules_fired(f))

    def test_mutex_contract_suppression_marker(self):
        src = ("#pragma once\n"
               "class S {\n"
               "  std::mutex mu_;  // flexcs-lint: allow(threading)\n"
               "};\n")
        f = lint_fixture({"src/runtime/ok.hpp": src})
        self.assertNotIn("threading", rules_fired(f))

    def test_suppression_marker(self):
        src = "std::thread t([] {});  // flexcs-lint: allow(threading)\n"
        f = lint_fixture({"tests/ok.cpp": src})
        self.assertNotIn("threading", rules_fired(f))


class ProcessControlTest(unittest.TestCase):
    def test_fork_outside_runtime_fires(self):
        f = lint_fixture({"src/cs/bad.cpp": "pid_t p = ::fork();\n"})
        self.assertIn("threading", rules_fired(f))

    def test_kill_and_waitpid_outside_runtime_fire(self):
        src = ("void reap(pid_t p) {\n"
               "  ::kill(p, 9);\n"
               "  ::waitpid(p, nullptr, 0);\n"
               "}\n")
        f = lint_fixture({"tools/bad.cpp": src})
        fired = [x for x in f if x.rule == "threading"]
        self.assertEqual(2, len(fired), "\n".join(str(x) for x in fired))

    def test_process_control_inside_runtime_clean(self):
        src = ("void spawn() {\n"
               "  int sv[2];\n"
               "  ::socketpair(1, 1, 0, sv);\n"
               "  if (::fork() == 0) ::_Exit(0);\n"
               "}\n")
        f = lint_fixture({"src/runtime/service.cpp": src})
        self.assertNotIn("threading", rules_fired(f))

    def test_member_fork_not_confused(self):
        # Rng::fork() (deterministic stream splitting) and member calls are
        # not process control.
        src = ("Rng Rng::fork() { return Rng(next_u64()); }\n"
               "void g(Rng& base) { Rng child = base.fork(); }\n")
        f = lint_fixture({"src/common/rng.cpp": src})
        self.assertNotIn("threading", rules_fired(f))

    def test_suppression_marker(self):
        src = "pid_t p = ::fork();  // flexcs-lint: allow(threading)\n"
        f = lint_fixture({"tests/ok.cpp": src})
        self.assertNotIn("threading", rules_fired(f))


class SocketSyscallTest(unittest.TestCase):
    def test_socket_outside_runtime_fires(self):
        f = lint_fixture({"src/cs/bad.cpp": "int fd = ::socket(2, 1, 0);\n"})
        self.assertIn("threading", rules_fired(f))

    def test_bind_listen_accept_connect_outside_runtime_fire(self):
        src = ("void serve(int fd, void* a, unsigned l) {\n"
               "  ::bind(fd, a, l);\n"
               "  ::listen(fd, 8);\n"
               "  ::accept(fd, nullptr, nullptr);\n"
               "  ::connect(fd, a, l);\n"
               "}\n")
        f = lint_fixture({"tests/bad.cpp": src})
        fired = [x for x in f if x.rule == "threading"]
        self.assertEqual(4, len(fired), "\n".join(str(x) for x in fired))

    def test_socket_syscalls_inside_runtime_clean(self):
        src = ("int open_listener(void* a, unsigned l) {\n"
               "  int fd = ::socket(2, 1, 0);\n"
               "  ::bind(fd, a, l);\n"
               "  ::listen(fd, 8);\n"
               "  return ::accept(fd, nullptr, nullptr);\n"
               "}\n")
        f = lint_fixture({"src/runtime/net.cpp": src})
        self.assertNotIn("threading", rules_fired(f))

    def test_member_connect_not_confused(self):
        # Connection::connect(...) / service.connect(...) are member calls,
        # not syscalls; std::bind-style qualified names are also out of scope.
        src = ("void g(Client& c) { c.connect(); }\n"
               "void h(Peer* p) { p->connect(); }\n")
        f = lint_fixture({"src/cs/ok.cpp": src})
        self.assertNotIn("threading", rules_fired(f))

    def test_suppression_marker(self):
        src = "int fd = ::socket(2, 1, 0);  // flexcs-lint: allow(threading)\n"
        f = lint_fixture({"tests/ok.cpp": src})
        self.assertNotIn("threading", rules_fired(f))


class DeadlinePollTest(unittest.TestCase):
    POLLING = (
        "#include \"solvers/solver.hpp\"\n"
        "namespace flexcs::solvers {\n"
        "void iterate(const SolveOptions& ctrl, int max_iterations) {\n"
        "  for (int it = 0; it < max_iterations; ++it) {\n"
        "    if (ctrl.should_stop()) break;\n"
        "    // work\n"
        "  }\n"
        "}\n"
        "}\n")

    def test_polling_loop_clean(self):
        f = lint_fixture({"src/solvers/kernel.cpp": self.POLLING})
        self.assertNotIn("deadline-poll", rules_fired(f))

    def test_non_polling_loop_fires(self):
        src = self.POLLING.replace("    if (ctrl.should_stop()) break;\n", "")
        f = lint_fixture({"src/solvers/kernel.cpp": src})
        self.assertIn("deadline-poll", rules_fired(f))

    def test_deadline_member_poll_counts(self):
        src = self.POLLING.replace(
            "if (ctrl.should_stop()) break;",
            "if (ctrl.deadline.expired()) break;")
        f = lint_fixture({"src/lp/kernel.cpp": src})
        self.assertNotIn("deadline-poll", rules_fired(f))

    def test_unbounded_helper_loop_ignored(self):
        # Loops without a budget token (plain element loops) are not solver
        # iteration loops and need no poll.
        src = ("void scale(double* v, unsigned long n) {\n"
               "  for (unsigned long i = 0; i < n; ++i) v[i] *= 2.0;\n"
               "}\n")
        f = lint_fixture({"src/solvers/helper.cpp": src})
        self.assertNotIn("deadline-poll", rules_fired(f))

    def test_out_of_scope_directory_ignored(self):
        src = self.POLLING.replace("    if (ctrl.should_stop()) break;\n", "")
        f = lint_fixture({"src/fe/kernel.cpp": src})
        self.assertNotIn("deadline-poll", rules_fired(f))

    def test_suppression_marker(self):
        src = self.POLLING.replace(
            "  for (int it = 0; it < max_iterations; ++it) {\n",
            "  for (int it = 0; it < max_iterations; ++it) {"
            "  // flexcs-lint: allow(deadline-poll)\n")
        src = src.replace("    if (ctrl.should_stop()) break;\n", "")
        f = lint_fixture({"src/solvers/kernel.cpp": src})
        self.assertNotIn("deadline-poll", rules_fired(f))


class SupervisionLoopTest(unittest.TestCase):
    def test_exitless_infinite_loop_in_runtime_fires(self):
        src = ("void broker() {\n"
               "  for (;;) {\n"
               "    step();\n"
               "  }\n"
               "}\n")
        f = lint_fixture({"src/runtime/service.cpp": src})
        self.assertIn("deadline-poll", rules_fired(f))

    def test_while_true_without_exit_fires(self):
        src = ("void watch() {\n"
               "  while (true) {\n"
               "    scan();\n"
               "  }\n"
               "}\n")
        f = lint_fixture({"src/runtime/stream.cpp": src})
        self.assertIn("deadline-poll", rules_fired(f))

    def test_loop_with_break_clean(self):
        src = ("void broker() {\n"
               "  for (;;) {\n"
               "    if (done()) break;\n"
               "    step();\n"
               "  }\n"
               "}\n")
        f = lint_fixture({"src/runtime/service.cpp": src})
        self.assertNotIn("deadline-poll", rules_fired(f))

    def test_loop_with_heartbeat_poll_clean(self):
        src = ("void watch(double heartbeat_seconds) {\n"
               "  while (true) {\n"
               "    wait_for(heartbeat_seconds);\n"
               "  }\n"
               "}\n")
        f = lint_fixture({"src/runtime/stream.cpp": src})
        self.assertNotIn("deadline-poll", rules_fired(f))

    def test_bounded_runtime_loop_ignored(self):
        # Element loops in the runtime are not supervision loops.
        src = ("void fill(double* v, unsigned long n) {\n"
               "  for (unsigned long i = 0; i < n; ++i) v[i] = 0.0;\n"
               "}\n")
        f = lint_fixture({"src/runtime/shard.cpp": src})
        self.assertNotIn("deadline-poll", rules_fired(f))

    def test_infinite_loop_outside_runtime_ignored(self):
        src = ("void spin() {\n"
               "  for (;;) {\n"
               "    step();\n"
               "  }\n"
               "}\n")
        f = lint_fixture({"src/fe/sim.cpp": src})
        self.assertNotIn("deadline-poll", rules_fired(f))

    def test_suppression_marker(self):
        src = ("void broker() {\n"
               "  for (;;) {  // flexcs-lint: allow(deadline-poll)\n"
               "    step();\n"
               "  }\n"
               "}\n")
        f = lint_fixture({"src/runtime/service.cpp": src})
        self.assertNotIn("deadline-poll", rules_fired(f))


class EntryCheckTest(unittest.TestCase):
    # Mirrors the real operator-based solver surface: solve_impl takes the
    # abstract la::LinearOperator, not a dense matrix.
    UNCHECKED = (
        "#include \"solvers/omp.hpp\"\n"
        "namespace flexcs::solvers {\n"
        "SolveResult OmpSolver::solve_impl(const la::LinearOperator& a,\n"
        "                                  const la::Vector& b,\n"
        "                                  const SolveOptions& ctrl) const {\n"
        "  SolveResult r;\n"
        "  r.x = la::Vector(a.cols(), 0.0);\n"
        "  return r;\n"
        "}\n"
        "}\n")

    def test_unvalidated_entry_point_fires(self):
        f = lint_fixture({"src/solvers/omp.cpp": self.UNCHECKED})
        fired = [x for x in f if x.rule == "entry-check"
                 and x.path == "src/solvers/omp.cpp"
                 and "validate" in x.message]
        self.assertTrue(fired)

    def test_validated_entry_point_clean(self):
        src = self.UNCHECKED.replace(
            "  SolveResult r;\n",
            "  validate_solve_inputs(a, b, \"OMP\");\n  SolveResult r;\n")
        f = lint_fixture({"src/solvers/omp.cpp": src})
        fired = [x for x in f if x.rule == "entry-check"
                 and x.path == "src/solvers/omp.cpp"]
        self.assertFalse(fired)

    def test_renamed_entry_point_reported(self):
        src = self.UNCHECKED.replace("OmpSolver::solve", "OmpSolver::run")
        f = lint_fixture({"src/solvers/omp.cpp": src})
        fired = [x for x in f if x.rule == "entry-check" and "not found" in x.message]
        self.assertTrue(fired)

    def test_declaration_skipped_definition_found(self):
        # A declaration before the definition must not satisfy (or confuse)
        # the body search.
        src = ("SolveResult solve_decl(int);\n" + self.UNCHECKED)
        f = lint_fixture({"src/solvers/omp.cpp": src})
        fired = [x for x in f if x.rule == "entry-check"
                 and x.path == "src/solvers/omp.cpp"
                 and "validate" in x.message]
        self.assertTrue(fired)

    # The matrix-free operator's entry points (ctor validates the pattern,
    # apply/apply_adjoint re-check shapes) are covered by the same rule.
    OPERATOR_UNCHECKED = (
        "#include \"cs/transform_operator.hpp\"\n"
        "namespace flexcs::cs {\n"
        "SubsampledTransformOperator::SubsampledTransformOperator(\n"
        "    dsp::BasisKind basis, SamplingPattern pattern)\n"
        "    : basis_(basis), pattern_(std::move(pattern)) {}\n"
        "la::Vector SubsampledTransformOperator::apply(\n"
        "    const la::Vector& x) const {\n"
        "  return la::Vector(pattern_.m(), 0.0);\n"
        "}\n"
        "la::Vector SubsampledTransformOperator::apply_adjoint(\n"
        "    const la::Vector& y) const {\n"
        "  return la::Vector(pattern_.n(), 0.0);\n"
        "}\n"
        "std::vector<la::Vector> SubsampledTransformOperator::apply_batch(\n"
        "    const std::vector<la::Vector>& xs) const {\n"
        "  return xs;\n"
        "}\n"
        "std::vector<la::Vector>\n"
        "SubsampledTransformOperator::apply_adjoint_batch(\n"
        "    const std::vector<la::Vector>& ys) const {\n"
        "  return ys;\n"
        "}\n"
        "}\n")

    def test_unchecked_transform_operator_fires(self):
        f = lint_fixture({"src/cs/transform_operator.cpp":
                          self.OPERATOR_UNCHECKED})
        fired = [x for x in f if x.rule == "entry-check"
                 and x.path == "src/cs/transform_operator.cpp"]
        # ctor, apply, apply_adjoint, and both batch applies each carry
        # their own spec.
        self.assertEqual(5, len(fired), "\n".join(str(x) for x in fired))

    def test_checked_transform_operator_clean(self):
        src = self.OPERATOR_UNCHECKED
        src = src.replace(
            "    : basis_(basis), pattern_(std::move(pattern)) {}",
            "    : basis_(basis), pattern_(std::move(pattern)) {\n"
            "  FLEXCS_CHECK(!pattern_.indices.empty(), \"empty pattern\");\n"
            "}")
        src = src.replace(
            "  return la::Vector(pattern_.m(), 0.0);",
            "  FLEXCS_CHECK(x.size() == cols(), \"shape\");\n"
            "  return la::Vector(pattern_.m(), 0.0);")
        src = src.replace(
            "  return la::Vector(pattern_.n(), 0.0);",
            "  FLEXCS_CHECK(y.size() == rows(), \"shape\");\n"
            "  return la::Vector(pattern_.n(), 0.0);")
        src = src.replace(
            "  return xs;",
            "  FLEXCS_CHECK(!xs.empty(), \"shape\");\n"
            "  return xs;")
        src = src.replace(
            "  return ys;",
            "  FLEXCS_CHECK(!ys.empty(), \"shape\");\n"
            "  return ys;")
        f = lint_fixture({"src/cs/transform_operator.cpp": src})
        fired = [x for x in f if x.rule == "entry-check"
                 and x.path == "src/cs/transform_operator.cpp"]
        self.assertFalse(fired, "\n".join(str(x) for x in fired))


class ServiceEntryCheckTest(unittest.TestCase):
    # The broker validates at admission; a bare-bones process_batch that
    # touches frames without FLEXCS_CHECK breaks the contract.
    UNCHECKED = (
        "#include \"runtime/service.hpp\"\n"
        "namespace flexcs::runtime {\n"
        "std::vector<ServiceFrameResult> DecodeService::process_batch(\n"
        "    const std::vector<la::Matrix>& frames,\n"
        "    const solvers::SolveOptions& ctrl) {\n"
        "  std::vector<ServiceFrameResult> results(frames.size());\n"
        "  return results;\n"
        "}\n"
        "}\n")

    def test_unvalidated_process_batch_fires(self):
        f = lint_fixture({"src/runtime/service.cpp": self.UNCHECKED})
        fired = [x for x in f if x.rule == "entry-check"
                 and x.path == "src/runtime/service.cpp"
                 and "process_batch" in x.message and "validate" in x.message]
        self.assertTrue(fired)

    def test_validated_process_batch_clean(self):
        src = self.UNCHECKED.replace(
            "  std::vector<ServiceFrameResult> results(frames.size());\n",
            "  FLEXCS_CHECK(!frames.empty(), \"empty batch\");\n"
            "  std::vector<ServiceFrameResult> results(frames.size());\n")
        f = lint_fixture({"src/runtime/service.cpp": src})
        fired = [x for x in f if x.rule == "entry-check"
                 and x.path == "src/runtime/service.cpp"
                 and "process_batch" in x.message and "validate" in x.message]
        self.assertFalse(fired, "\n".join(str(x) for x in fired))


class ActivityEntryCheckTest(unittest.TestCase):
    # Event-driven readout surface: the gate constructor must validate its
    # options, update must validate the frame shape, and the detector
    # accessor must bounds-check the tile index.
    UNCHECKED = (
        "#include \"runtime/activity.hpp\"\n"
        "namespace flexcs::runtime {\n"
        "ActivityGate::ActivityGate(const TileGrid& grid,\n"
        "                           ActivityGateOptions opts)\n"
        "    : grid_(grid), opts_(std::move(opts)) {\n"
        "  state_.resize(grid_.tiles());\n"
        "}\n"
        "const cs::SamplingPattern& ActivityGate::detector(\n"
        "    std::size_t tile) const {\n"
        "  return detectors_[tile];\n"
        "}\n"
        "FrameActivity ActivityGate::update(const la::Matrix& frame) {\n"
        "  FrameActivity fa;\n"
        "  return fa;\n"
        "}\n"
        "}\n")

    def test_unchecked_gate_fires(self):
        f = lint_fixture({"src/runtime/activity.cpp": self.UNCHECKED})
        fired = [x for x in f if x.rule == "entry-check"
                 and x.path == "src/runtime/activity.cpp"
                 and "validate" in x.message]
        # ctor, detector accessor, and update each carry their own spec.
        self.assertEqual(3, len(fired), "\n".join(str(x) for x in fired))

    def test_checked_gate_clean(self):
        src = self.UNCHECKED
        src = src.replace(
            "  state_.resize(grid_.tiles());\n",
            "  FLEXCS_CHECK(opts_.threshold >= 0.0, \"threshold\");\n"
            "  state_.resize(grid_.tiles());\n")
        src = src.replace(
            "  return detectors_[tile];\n",
            "  FLEXCS_CHECK(tile < detectors_.size(), \"tile\");\n"
            "  return detectors_[tile];\n")
        src = src.replace(
            "  FrameActivity fa;\n",
            "  FLEXCS_CHECK(frame.rows() == grid_.rows, \"shape\");\n"
            "  FrameActivity fa;\n")
        f = lint_fixture({"src/runtime/activity.cpp": src})
        fired = [x for x in f if x.rule == "entry-check"
                 and x.path == "src/runtime/activity.cpp"]
        self.assertFalse(fired, "\n".join(str(x) for x in fired))


class TileGridEntryCheckTest(unittest.TestCase):
    # The tile geometry (moved out of shard.cpp) keeps its contract: the
    # constructor rejects non-dividing tilings and copy_interior re-checks
    # both frame shapes before writing pixels.
    UNCHECKED = (
        "#include \"runtime/tile_grid.hpp\"\n"
        "namespace flexcs::runtime {\n"
        "TileGrid::TileGrid(std::size_t rows_in, std::size_t cols_in,\n"
        "                   std::size_t tr, std::size_t tc, std::size_t h)\n"
        "    : rows(rows_in), cols(cols_in) {\n"
        "  grid_rows = rows / tr;\n"
        "}\n"
        "void TileGrid::copy_interior(const la::Matrix& src,\n"
        "                             std::size_t tile,\n"
        "                             la::Matrix& dst) const {\n"
        "  (void)src;\n"
        "}\n"
        "}\n")

    def test_unchecked_tile_grid_fires(self):
        f = lint_fixture({"src/runtime/tile_grid.cpp": self.UNCHECKED})
        fired = [x for x in f if x.rule == "entry-check"
                 and x.path == "src/runtime/tile_grid.cpp"
                 and "validate" in x.message]
        self.assertEqual(2, len(fired), "\n".join(str(x) for x in fired))

    def test_checked_tile_grid_clean(self):
        src = self.UNCHECKED
        src = src.replace(
            "  grid_rows = rows / tr;\n",
            "  FLEXCS_CHECK(rows % tr == 0, \"divisibility\");\n"
            "  grid_rows = rows / tr;\n")
        src = src.replace(
            "  (void)src;\n",
            "  FLEXCS_CHECK(tile < tiles(), \"tile\");\n"
            "  (void)src;\n")
        f = lint_fixture({"src/runtime/tile_grid.cpp": src})
        fired = [x for x in f if x.rule == "entry-check"
                 and x.path == "src/runtime/tile_grid.cpp"]
        self.assertFalse(fired, "\n".join(str(x) for x in fired))


class ResolveFractionEntryCheckTest(unittest.TestCase):
    # The per-frame fraction override resolver is what keeps event-driven
    # adaptive sampling inside (0,1]; it must reject out-of-range overrides
    # rather than forward them into pattern generation.
    UNCHECKED = (
        "#include \"cs/sampling.hpp\"\n"
        "namespace flexcs::cs {\n"
        "double resolve_fraction(double request, double fallback) {\n"
        "  return request == 0.0 ? fallback : request;\n"
        "}\n"
        "}\n")

    def test_unchecked_resolver_fires(self):
        f = lint_fixture({"src/cs/sampling.cpp": self.UNCHECKED})
        fired = [x for x in f if x.rule == "entry-check"
                 and x.path == "src/cs/sampling.cpp"
                 and "resolve_fraction" in x.message
                 and "validate" in x.message]
        self.assertTrue(fired)

    def test_checked_resolver_clean(self):
        src = self.UNCHECKED.replace(
            "  return request == 0.0 ? fallback : request;\n",
            "  FLEXCS_CHECK(request >= 0.0 && request <= 1.0, \"range\");\n"
            "  return request == 0.0 ? fallback : request;\n")
        f = lint_fixture({"src/cs/sampling.cpp": src})
        fired = [x for x in f if x.rule == "entry-check"
                 and x.path == "src/cs/sampling.cpp"
                 and "resolve_fraction" in x.message]
        self.assertFalse(fired, "\n".join(str(x) for x in fired))


class PartialLintTest(unittest.TestCase):
    def test_single_file_mode_skips_other_entry_points(self):
        with tempfile.TemporaryDirectory() as td:
            root = Path(td)
            (root / "src/cs").mkdir(parents=True)
            (root / "src/solvers").mkdir(parents=True)
            (root / "src/cs/defects.cpp").write_text("int x;\n")
            findings = flexcs_lint.lint_tree(root, only=["src/cs/defects.cpp"])
            self.assertEqual([], findings,
                             "\n".join(str(x) for x in findings))


class RealTreeTest(unittest.TestCase):
    def test_repository_is_clean(self):
        root = Path(__file__).resolve().parent.parent
        if not (root / "src").is_dir():
            self.skipTest("not running inside the repo")
        findings = flexcs_lint.lint_tree(root)
        self.assertEqual([], findings,
                         "\n".join(str(x) for x in findings))


if __name__ == "__main__":
    unittest.main(verbosity=2)
