#!/usr/bin/env python3
"""flexcs-lint: static contract checker for the flexcs source tree.

Enforces project invariants the compiler cannot express:

  pragma-once       every header uses `#pragma once`
  using-namespace   no `using namespace` at any scope inside a header
  raw-new-delete    no raw `new` / `delete` expressions outside src/la
                    (`= delete;` member suppression is fine anywhere)
  rng-discipline    no std::rand / srand / std::random_device / std::mt19937
                    etc. outside src/common/rng.* — all randomness flows
                    through flexcs::Rng so a single seed reproduces a run
  float-equality    no == / != against a non-zero floating literal; exact
                    comparison against 0.0 is allowed (the skip-zero sparsity
                    idiom is IEEE-exact), anything else wants a tolerance
  entry-check       every public solver/encoder/decoder entry point validates
                    its inputs (FLEXCS_CHECK / validate_solve_inputs or a
                    delegation to a validating overload) before touching data
  threading         thread creation (std::thread / std::jthread) is confined
                    to src/runtime/ — the streaming runtime owns all
                    concurrency; `.detach()` is banned everywhere (threads
                    must be joined so shutdown is deterministic); mutex
                    members in headers must be the annotated
                    flexcs::common::Mutex (raw std::mutex carries no
                    compiler-checked capability), and every mutex member must
                    be named by at least one FLEXCS_GUARDED_BY /
                    FLEXCS_PT_GUARDED_BY / FLEXCS_REQUIRES (or acquire/
                    release) contract in the same header — a comment is no
                    longer enough; Clang TSA verifies the contract under the
                    `analyze` preset; process control (::fork / ::kill /
                    ::waitpid / ::socketpair / ...) is likewise confined to
                    src/runtime/ — the decode-service broker owns worker
                    process lifecycles, and a stray fork() under a
                    multi-threaded layer inherits locked mutexes it can
                    never unlock; socket syscalls (::socket / ::bind /
                    ::listen / ::accept / ::connect) are likewise confined
                    to src/runtime/ — every socket fd flows through the
                    net transport (runtime/net.hpp) so nonblocking setup,
                    EINTR handling, and fd hygiene across fork() live in
                    exactly one place
  deadline-poll     every bounded iteration loop in the iterative kernels
                    (src/solvers/, src/rpca/, src/lp/, src/la/) polls its
                    cooperative deadline/cancel control — a loop over
                    max_iterations that never calls should_stop()/checks the
                    token would hang past its frame budget; and every
                    unbounded supervision loop in src/runtime/ (`for (;;)`,
                    `while (true)`) must either poll a deadline/heartbeat
                    token or contain an explicit break/return — an exitless
                    infinite loop in the broker is a guaranteed hang

A line may opt out of one rule with a trailing marker comment:

    dangerous_thing();  // flexcs-lint: allow(rule-id)

Stdlib-only; runs standalone (`python3 tools/flexcs_lint.py --root .`) and as
the ctest `lint.flexcs`. Exit status 0 = clean, 1 = findings, 2 = usage error.
Known textual limitations: raw-string literals and float==float comparisons
between two identifiers are not detected.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Callable, List, NamedTuple, Optional, Sequence, Tuple

SOURCE_DIRS = ("src", "tests", "bench", "examples", "tools")
SOURCE_EXTS = (".hpp", ".cpp")

# Directory prefix whose files may use raw new/delete (owning containers).
RAW_NEW_ALLOWED_PREFIX = "src/la/"

# Files allowed to touch <random> / rand machinery directly.
RNG_ALLOWED = ("src/common/rng.hpp", "src/common/rng.cpp")

# Public entry points that must validate inputs before touching data.
# (file, function regex, accepted validation tokens). A missing file or an
# unmatched function is itself a finding: it means the contract surface moved
# without the lint being updated.
ENTRY_POINTS: Sequence[Tuple[str, str, Tuple[str, ...]]] = (
    ("src/solvers/fista.cpp", r"FistaSolver::solve_impl\b", ("validate_solve_inputs", "FLEXCS_CHECK")),
    ("src/solvers/fista.cpp", r"FistaSolver::solve_batch_impl\b", ("validate_solve_inputs", "FLEXCS_CHECK")),
    ("src/solvers/solver.cpp", r"SparseSolver::solve_batch\b", ("FLEXCS_CHECK",)),
    ("src/solvers/omp.cpp", r"OmpSolver::solve_impl\b", ("validate_solve_inputs", "FLEXCS_CHECK")),
    ("src/solvers/cosamp.cpp", r"CosampSolver::solve_impl\b", ("validate_solve_inputs", "FLEXCS_CHECK")),
    ("src/solvers/irls.cpp", r"IrlsSolver::solve_impl\b", ("validate_solve_inputs", "FLEXCS_CHECK")),
    ("src/solvers/admm.cpp", r"AdmmLassoSolver::solve_impl\b", ("validate_solve_inputs", "FLEXCS_CHECK")),
    ("src/solvers/bp_lp.cpp", r"BpLpSolver::solve_impl\b", ("validate_solve_inputs", "FLEXCS_CHECK")),
    ("src/solvers/solver.cpp", r"\bdebias_on_support", ("FLEXCS_CHECK",)),
    ("src/la/operator.cpp", r"\bcg_solve\b", ("FLEXCS_CHECK",)),
    # Matrix-free measurement operator: the constructor owns the pattern
    # validation; apply/apply_adjoint re-check shapes because solvers hand
    # them arbitrary iterate vectors.
    ("src/cs/transform_operator.cpp",
     r"SubsampledTransformOperator::SubsampledTransformOperator\b",
     ("FLEXCS_CHECK",)),
    ("src/cs/transform_operator.cpp",
     r"SubsampledTransformOperator::apply\b", ("FLEXCS_CHECK",)),
    ("src/cs/transform_operator.cpp",
     r"SubsampledTransformOperator::apply_adjoint\b", ("FLEXCS_CHECK",)),
    ("src/cs/transform_operator.cpp",
     r"SubsampledTransformOperator::apply_batch\b", ("FLEXCS_CHECK",)),
    ("src/cs/transform_operator.cpp",
     r"SubsampledTransformOperator::apply_adjoint_batch\b", ("FLEXCS_CHECK",)),
    # Fast transform kernels: the DCT plan constructor owns the length
    # validation (every apply goes through a plan), the in-place Haar
    # kernels re-run the level/dimension contract via check_levels.
    ("src/dsp/fft.cpp", r"Dct1dPlan::Dct1dPlan\b", ("FLEXCS_CHECK",)),
    ("src/dsp/fft.cpp", r"\bdct2d_apply\b", ("FLEXCS_CHECK",)),
    ("src/dsp/fft.cpp", r"\bidct2d_apply\b", ("FLEXCS_CHECK",)),
    ("src/dsp/wavelet.cpp", r"\bhaar2d_inplace\b", ("check_levels",)),
    ("src/dsp/wavelet.cpp", r"\bihaar2d_inplace\b", ("check_levels",)),
    ("src/cs/encoder.cpp", r"Encoder::encode\b", ("FLEXCS_CHECK",)),
    ("src/cs/encoder.cpp", r"Encoder::encode_scanned\b", ("FLEXCS_CHECK",)),
    ("src/cs/decoder.cpp", r"Decoder::decode\b", ("FLEXCS_CHECK", "decode_with")),
    # decode_with / decode_batch_with share per-frame validation through
    # check_decode_args (itself FLEXCS_CHECK-based).
    ("src/cs/decoder.cpp", r"Decoder::decode_with\b",
     ("FLEXCS_CHECK", "check_decode_args")),
    ("src/cs/decoder.cpp", r"Decoder::decode_batch\b", ("FLEXCS_CHECK", "decode_batch_with")),
    ("src/cs/decoder.cpp", r"Decoder::decode_batch_with\b",
     ("FLEXCS_CHECK", "check_decode_args")),
    ("src/cs/decoder.cpp", r"Decoder::check_decode_args\b", ("FLEXCS_CHECK",)),
    ("src/cs/decoder.cpp", r"Decoder::measurement_matrix\b", ("FLEXCS_CHECK", "measurement_operator")),
    ("src/cs/decoder.cpp", r"Decoder::measurement_operator\b", ("FLEXCS_CHECK",)),
    ("src/cs/decoder.cpp", r"Decoder::operator_norm\b", ("FLEXCS_CHECK",)),
    ("src/cs/decoder.cpp", r"Decoder::implicit_operator\b", ("FLEXCS_CHECK",)),
    ("src/cs/sampling.cpp", r"\bapply_pattern\b", ("FLEXCS_CHECK",)),
    ("src/cs/sampling.cpp", r"\bresolve_fraction\b", ("FLEXCS_CHECK",)),
    ("src/cs/faults.cpp", r"FaultScenario::corrupt_frame\b", ("FLEXCS_CHECK",)),
    ("src/cs/faults.cpp", r"FaultScenario::corrupt_measurements\b", ("FLEXCS_CHECK",)),
    ("src/cs/pipeline.cpp", r"\bdecode_trimmed_ex\b", ("FLEXCS_CHECK",)),
    ("src/runtime/pipeline.cpp", r"RobustPipeline::process\b", ("FLEXCS_CHECK",)),
    ("src/runtime/pipeline.cpp", r"RobustPipeline::process_batch\b", ("FLEXCS_CHECK",)),
    ("src/runtime/stream.cpp", r"StreamServer::StreamServer\b", ("FLEXCS_CHECK",)),
    # The first submit overload delegates to the SubmitControl one, which
    # carries the shape check.
    ("src/runtime/stream.cpp", r"StreamServer::submit\b", ("FLEXCS_CHECK", "SubmitControl")),
    ("src/runtime/shard.cpp", r"ShardedDecoder::ShardedDecoder\b", ("FLEXCS_CHECK",)),
    # ShardedDecoder::process delegates to process_batch, which validates.
    ("src/runtime/shard.cpp", r"ShardedDecoder::process\b", ("FLEXCS_CHECK", "process_batch")),
    ("src/runtime/shard.cpp", r"ShardedDecoder::process_batch\b", ("FLEXCS_CHECK",)),
    ("src/runtime/tile_grid.cpp", r"TileGrid::TileGrid\b", ("FLEXCS_CHECK",)),
    ("src/runtime/tile_grid.cpp", r"TileGrid::copy_interior\b",
     ("FLEXCS_CHECK",)),
    # Event-driven readout: the gate validates its options at construction
    # and every frame's shape on update; the detector accessor bounds-checks
    # the tile index.
    ("src/runtime/activity.cpp", r"ActivityGate::ActivityGate\b",
     ("FLEXCS_CHECK",)),
    ("src/runtime/activity.cpp", r"ActivityGate::update\b", ("FLEXCS_CHECK",)),
    ("src/runtime/activity.cpp", r"ActivityGate::detector\b",
     ("FLEXCS_CHECK",)),
    # Multi-process decode service: the typed wire decoders validate every
    # structural claim an untrusted peer process can make, the worker loop
    # validates its transport/geometry, and the broker validates frames at
    # admission (process delegates to process_batch).
    ("src/runtime/wire.cpp", r"\bdecode_tile_request\b", ("FLEXCS_CHECK",)),
    ("src/runtime/wire.cpp", r"\bdecode_tile_response\b", ("FLEXCS_CHECK",)),
    # Remote (TCP) fleet: the handshake decoders validate an untrusted
    # peer's claims, the remote worker loop validates its target/geometry,
    # and the transport validates its bind before exposing a port.
    ("src/runtime/wire.cpp", r"\bdecode_hello\b", ("FLEXCS_CHECK",)),
    ("src/runtime/wire.cpp", r"\bdecode_hello_ack\b", ("FLEXCS_CHECK",)),
    ("src/runtime/net.cpp", r"Listener::open\b", ("FLEXCS_CHECK",)),
    ("src/runtime/worker.cpp", r"\bdecode_worker_loop\b", ("FLEXCS_CHECK",)),
    ("src/runtime/worker.cpp", r"\bremote_decode_worker_loop\b",
     ("FLEXCS_CHECK",)),
    ("src/runtime/service.cpp", r"DecodeService::DecodeService\b", ("FLEXCS_CHECK",)),
    ("src/runtime/service.cpp", r"DecodeService::process\b", ("FLEXCS_CHECK", "process_batch")),
    ("src/runtime/service.cpp", r"DecodeService::process_batch\b", ("FLEXCS_CHECK",)),
)

# How deep into a function body (in non-blank lines) validation must appear.
ENTRY_CHECK_WINDOW = 15

ALLOW_RE = re.compile(r"flexcs-lint:\s*allow\(([a-z0-9-]+)\)")


class Finding(NamedTuple):
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments, string and char literals, preserving newlines so
    line numbers in the stripped text match the original."""
    out: List[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def suppressed_rules(original_line: str) -> List[str]:
    return ALLOW_RE.findall(original_line)


class SourceFile(NamedTuple):
    relpath: str
    text: str
    stripped: str

    @property
    def lines(self) -> List[str]:
        return self.text.splitlines()

    @property
    def stripped_lines(self) -> List[str]:
        return self.stripped.splitlines()

    def is_header(self) -> bool:
        return self.relpath.endswith(".hpp")

    def finding_unless_allowed(self, line_no: int, rule: str,
                               message: str) -> Optional[Finding]:
        lines = self.lines
        original = lines[line_no - 1] if 0 < line_no <= len(lines) else ""
        if rule in suppressed_rules(original):
            return None
        return Finding(self.relpath, line_no, rule, message)


# ---------------------------------------------------------------------------
# Per-file rules


def check_pragma_once(f: SourceFile) -> List[Finding]:
    if not f.is_header():
        return []
    for line in f.stripped_lines:
        if line.strip().startswith("#pragma once"):
            return []
    return [Finding(f.relpath, 1, "pragma-once", "header lacks '#pragma once'")]


def check_using_namespace(f: SourceFile) -> List[Finding]:
    if not f.is_header():
        return []
    findings: List[Finding] = []
    pat = re.compile(r"\busing\s+namespace\b")
    for idx, line in enumerate(f.stripped_lines, start=1):
        if pat.search(line):
            fd = f.finding_unless_allowed(
                idx, "using-namespace",
                "'using namespace' in a header leaks into every includer")
            if fd:
                findings.append(fd)
    return findings


_NEW_RE = re.compile(r"\bnew\b")
_DELETE_RE = re.compile(r"\bdelete\b")


def check_raw_new_delete(f: SourceFile) -> List[Finding]:
    if f.relpath.startswith(RAW_NEW_ALLOWED_PREFIX):
        return []
    findings: List[Finding] = []
    for idx, line in enumerate(f.stripped_lines, start=1):
        for m in _NEW_RE.finditer(line):
            prefix = line[:m.start()].rstrip()
            if prefix.endswith("operator"):
                continue
            fd = f.finding_unless_allowed(
                idx, "raw-new-delete",
                "raw 'new' outside src/la — use std::vector / smart pointers")
            if fd:
                findings.append(fd)
        for m in _DELETE_RE.finditer(line):
            prefix = line[:m.start()].rstrip()
            if prefix.endswith("=") or prefix.endswith("operator"):
                continue  # deleted member fn / operator delete declaration
            fd = f.finding_unless_allowed(
                idx, "raw-new-delete",
                "raw 'delete' outside src/la — use RAII ownership")
            if fd:
                findings.append(fd)
    return findings


_RNG_RE = re.compile(
    r"\bstd::rand\b|\bsrand\s*\(|\bstd::random_device\b|\bstd::mt19937(?:_64)?\b"
    r"|\bstd::default_random_engine\b|\bstd::minstd_rand0?\b")


def check_rng_discipline(f: SourceFile) -> List[Finding]:
    if f.relpath in RNG_ALLOWED:
        return []
    findings: List[Finding] = []
    for idx, line in enumerate(f.stripped_lines, start=1):
        if _RNG_RE.search(line):
            fd = f.finding_unless_allowed(
                idx, "rng-discipline",
                "ad-hoc RNG breaks run reproducibility — draw from "
                "flexcs::Rng (common/rng.hpp) instead")
            if fd:
                findings.append(fd)
    return findings


_FLOAT_LIT = r"(?:\d+\.\d*|\.\d+|\d+\.?\d*[eE][+-]?\d+)[fFlL]?"
_FLOAT_EQ_RE = re.compile(
    r"[=!]=\s*[+-]?(" + _FLOAT_LIT + r")|(" + _FLOAT_LIT + r")\s*[=!]=")


def _literal_value(lit: str) -> float:
    return float(lit.rstrip("fFlL"))


def check_float_equality(f: SourceFile) -> List[Finding]:
    findings: List[Finding] = []
    for idx, line in enumerate(f.stripped_lines, start=1):
        for m in _FLOAT_EQ_RE.finditer(line):
            lit = m.group(1) or m.group(2)
            if _literal_value(lit) == 0.0:
                continue  # exact-zero round-trips are IEEE-exact by design
            fd = f.finding_unless_allowed(
                idx, "float-equality",
                f"equality against floating literal {lit} — "
                "compare with a tolerance (or suppress in a test helper)")
            if fd:
                findings.append(fd)
    return findings


# Directory prefix whose files may create threads (the streaming runtime owns
# all concurrency; everything below it stays single-threaded and composable).
THREAD_ALLOWED_PREFIX = "src/runtime/"

# The annotated locking primitives themselves: the raw std::mutex inside the
# flexcs::common::Mutex wrapper is the one mutex the contract machinery
# cannot apply to (it IS the capability).
MUTEX_CONTRACT_EXEMPT = ("src/common/annotations.hpp",)

_THREAD_SPAWN_RE = re.compile(r"\bstd::j?thread\b")
_DETACH_RE = re.compile(r"\.\s*detach\s*\(")
# Global-scope-qualified POSIX process control (the project idiom for
# syscalls). The lookbehind keeps member functions like Rng::fork() and
# DecodeService member calls out of scope — only `::fork(` at global scope
# matches.
_PROCESS_CONTROL_RE = re.compile(
    r"(?<![\w>])::(?:v?fork|kill|raise|waitpid|wait|socketpair|pipe2?"
    r"|execvp?e?|_[eE]xit)\s*\(")
# Socket transport syscalls: confined to src/runtime/ for the same reason —
# the net transport (runtime/net.hpp) owns every socket fd, so nonblocking
# setup, EINTR retries, and close-on-fork hygiene are implemented once. The
# lookbehind again keeps member functions (service.connect(...)) out of
# scope — only the global-scope-qualified syscall matches.
_SOCKET_SYSCALL_RE = re.compile(
    r"(?<![\w>])::(?:socket|bind|listen|accept4?|connect)\s*\(")
_STD_MUTEX_MEMBER_RE = re.compile(
    r"\bstd::(?:shared_|recursive_|timed_|recursive_timed_)?mutex\s+(\w+)\s*;")
_WRAPPED_MUTEX_MEMBER_RE = re.compile(
    r"\b(?:flexcs::)?(?:common::)?Mutex\s+(\w+)\s*;")


def _has_lock_contract(stripped: str, mutex_name: str) -> bool:
    """True when at least one FLEXCS_* capability contract names the mutex:
    a member guarded by it, or a function that requires/acquires/releases
    it. FLEXCS_EXCLUDES alone is not a contract — it documents what a caller
    must NOT hold, it never says what the mutex protects."""
    esc = re.escape(mutex_name)
    contract = re.compile(
        r"FLEXCS_(?:PT_)?GUARDED_BY\(\s*" + esc + r"\s*\)"
        r"|FLEXCS_(?:REQUIRES|ACQUIRE|RELEASE|TRY_ACQUIRE)\([^)]*\b" + esc
        + r"\b")
    return contract.search(stripped) is not None


def check_threading(f: SourceFile) -> List[Finding]:
    findings: List[Finding] = []
    for idx, line in enumerate(f.stripped_lines, start=1):
        if _DETACH_RE.search(line):
            fd = f.finding_unless_allowed(
                idx, "threading",
                "'.detach()' orphans a thread past shutdown — keep the "
                "handle and join it")
            if fd:
                findings.append(fd)
        if (_THREAD_SPAWN_RE.search(line)
                and not f.relpath.startswith(THREAD_ALLOWED_PREFIX)):
            fd = f.finding_unless_allowed(
                idx, "threading",
                "std::thread outside src/runtime/ — concurrency lives in the "
                "streaming runtime; lower layers stay single-threaded")
            if fd:
                findings.append(fd)
        if (_PROCESS_CONTROL_RE.search(line)
                and not f.relpath.startswith(THREAD_ALLOWED_PREFIX)):
            fd = f.finding_unless_allowed(
                idx, "threading",
                "process control (::fork/::kill/::waitpid/...) outside "
                "src/runtime/ — the decode-service broker owns worker "
                "process lifecycles")
            if fd:
                findings.append(fd)
        if (_SOCKET_SYSCALL_RE.search(line)
                and not f.relpath.startswith(THREAD_ALLOWED_PREFIX)):
            fd = f.finding_unless_allowed(
                idx, "threading",
                "socket syscall (::socket/::bind/::listen/::accept/"
                "::connect) outside src/runtime/ — go through the net "
                "transport (net::Listener / net::connect_to) so fd "
                "discipline lives in one place")
            if fd:
                findings.append(fd)
    if f.is_header() and f.relpath not in MUTEX_CONTRACT_EXEMPT:
        for idx, line in enumerate(f.stripped_lines, start=1):
            std_m = _STD_MUTEX_MEMBER_RE.search(line)
            if std_m:
                fd = f.finding_unless_allowed(
                    idx, "threading",
                    f"std::mutex member '{std_m.group(1)}' in a header — use "
                    "flexcs::common::Mutex (common/annotations.hpp) so Clang "
                    "TSA can enforce its locking contract")
                if fd:
                    findings.append(fd)
                continue
            wrapped = _WRAPPED_MUTEX_MEMBER_RE.search(line)
            if not wrapped:
                continue
            name = wrapped.group(1)
            if _has_lock_contract(f.stripped, name):
                continue
            fd = f.finding_unless_allowed(
                idx, "threading",
                f"mutex member '{name}' has no FLEXCS_GUARDED_BY / "
                "FLEXCS_REQUIRES contract in this header — annotate what it "
                "protects so the `analyze` preset can verify every access")
            if fd:
                findings.append(fd)
    return findings


# Iterative-kernel scope for the deadline-poll rule: any bounded iteration
# loop here must poll the cooperative deadline/cancel control so an expired
# solve stops at the next iteration boundary (the streaming runtime's
# bounded-latency contract).
DEADLINE_POLL_DIRS = ("src/solvers/", "src/rpca/", "src/lp/", "src/la/")

# A loop counts as a bounded solver iteration when its header names one of
# these budget tokens.
_LOOP_BOUND_TOKENS = ("max_iterations", "max_iters", "kMaxIters", "kmax",
                      "max_sweeps")

# ...and its body must reference one of these to count as polling.
_DEADLINE_POLL_TOKENS = ("should_stop", "cancelled", "deadline", "expired",
                         "cancel")

# Supervision scope: unbounded loops (`for (;;)`, `while (true)`) in the
# streaming/service runtime must either poll a time-based token or contain
# an explicit exit statement — the broker event loop, the worker read loop,
# and the watchdog all run "forever" by design, but each iteration must be
# able to leave.
RUNTIME_SUPERVISION_PREFIX = "src/runtime/"

# Matched against the loop header with all whitespace removed.
_UNBOUNDED_HEADER_RE = re.compile(r"^\((?:;;|true|1)\)$")

# Exit paths that satisfy the supervision rule, on top of the poll tokens.
_SUPERVISION_EXIT_TOKENS = _DEADLINE_POLL_TOKENS + (
    "heartbeat", "poll", "break", "return", "throw")

_LOOP_HEAD_RE = re.compile(r"\b(?:for|while)\s*\(")


def _balanced_span(text: str, start: int, open_ch: str, close_ch: str
                   ) -> Optional[int]:
    """Index one past the matching closer for the opener at `start`."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return None


def check_deadline_poll(f: SourceFile) -> List[Finding]:
    in_kernels = f.relpath.startswith(DEADLINE_POLL_DIRS)
    in_runtime = f.relpath.startswith(RUNTIME_SUPERVISION_PREFIX)
    if not (in_kernels or in_runtime):
        return []
    findings: List[Finding] = []
    text = f.stripped
    for m in _LOOP_HEAD_RE.finditer(text):
        paren_open = text.index("(", m.start())
        paren_end = _balanced_span(text, paren_open, "(", ")")
        if paren_end is None:
            continue
        header = text[paren_open:paren_end]
        bounded_solver_loop = in_kernels and any(
            tok in header for tok in _LOOP_BOUND_TOKENS)
        unbounded_supervision_loop = in_runtime and bool(
            _UNBOUNDED_HEADER_RE.match(re.sub(r"\s+", "", header)))
        if not (bounded_solver_loop or unbounded_supervision_loop):
            continue
        line_no = text.count("\n", 0, m.start()) + 1
        # Loop body: the braced block after the header, or the single
        # statement up to ';' for brace-less loops.
        i = paren_end
        while i < len(text) and text[i] in " \t\n":
            i += 1
        if i < len(text) and text[i] == "{":
            body_end = _balanced_span(text, i, "{", "}")
            body = text[i:body_end] if body_end else text[i:]
        else:
            semi = text.find(";", i)
            body = text[i:semi if semi != -1 else len(text)]
        if bounded_solver_loop:
            if any(tok in body for tok in _DEADLINE_POLL_TOKENS):
                continue
            fd = f.finding_unless_allowed(
                line_no, "deadline-poll",
                "bounded solver loop never polls its deadline/cancel token — "
                "check ctrl.should_stop() (or the deadline/cancel members) "
                "each iteration so expired solves stop at the next boundary")
            if fd:
                findings.append(fd)
            continue
        if any(tok in body for tok in _SUPERVISION_EXIT_TOKENS):
            continue
        fd = f.finding_unless_allowed(
            line_no, "deadline-poll",
            "unbounded supervision loop has no exit path — poll a deadline/"
            "heartbeat token or break/return so the broker cannot hang")
        if fd:
            findings.append(fd)
    return findings


FILE_RULES: Sequence[Callable[[SourceFile], List[Finding]]] = (
    check_pragma_once,
    check_using_namespace,
    check_raw_new_delete,
    check_rng_discipline,
    check_float_equality,
    check_threading,
    check_deadline_poll,
)


# ---------------------------------------------------------------------------
# Tree-level rule: entry-point input validation


def _function_body(stripped: str, name_re: str) -> Optional[Tuple[int, str]]:
    """Returns (first body line number, body text) of the first definition of
    a function whose name matches `name_re`, or None."""
    for m in re.finditer(name_re, stripped):
        # Walk forward to the opening brace of the definition; give up at ';'
        # (that was a declaration, keep looking).
        i = m.end()
        depth_paren = 0
        while i < len(stripped):
            c = stripped[i]
            if c == "(":
                depth_paren += 1
            elif c == ")":
                depth_paren -= 1
            elif c == ";" and depth_paren == 0:
                break  # declaration only
            elif c == "{" and depth_paren == 0:
                start = i + 1
                depth = 1
                j = start
                while j < len(stripped) and depth:
                    if stripped[j] == "{":
                        depth += 1
                    elif stripped[j] == "}":
                        depth -= 1
                    j += 1
                body = stripped[start:j - 1] if depth == 0 else stripped[start:]
                line_no = stripped.count("\n", 0, start) + 1
                return line_no, body
            i += 1
    return None


def check_entry_points(root: Path, files: dict,
                       partial: bool = False) -> List[Finding]:
    """`partial` = linting an explicit file subset: specs for files outside
    the subset are skipped rather than reported as missing."""
    findings: List[Finding] = []
    for relpath, func_re, tokens in ENTRY_POINTS:
        f = files.get(relpath)
        if f is None:
            if not partial and (root / relpath.split("/")[0]).is_dir():
                findings.append(Finding(
                    relpath, 1, "entry-check",
                    f"entry-point file missing (lint config expects {func_re})"))
            continue
        found = _function_body(f.stripped, func_re)
        if found is None:
            findings.append(Finding(
                f.relpath, 1, "entry-check",
                f"entry point /{func_re}/ not found — update tools/flexcs_lint.py "
                "if it moved"))
            continue
        line_no, body = found
        window = [ln for ln in body.splitlines() if ln.strip()][:ENTRY_CHECK_WINDOW]
        head = "\n".join(window)
        if not any(tok in head for tok in tokens):
            findings.append(Finding(
                f.relpath, line_no, "entry-check",
                f"/{func_re}/ must validate inputs via one of {list(tokens)} "
                f"within its first {ENTRY_CHECK_WINDOW} lines"))
    return findings


# ---------------------------------------------------------------------------
# Driver


def collect_files(root: Path, only: Optional[Sequence[str]] = None
                  ) -> List[SourceFile]:
    paths: List[Path] = []
    if only:
        paths = [root / p for p in only]
    else:
        for d in SOURCE_DIRS:
            base = root / d
            if not base.is_dir():
                continue
            for ext in SOURCE_EXTS:
                paths.extend(sorted(base.rglob(f"*{ext}")))
    files: List[SourceFile] = []
    for p in paths:
        if any(part.startswith("build") for part in p.parts):
            continue
        try:
            text = p.read_text(encoding="utf-8", errors="replace")
        except OSError as e:
            print(f"flexcs-lint: cannot read {p}: {e}", file=sys.stderr)
            continue
        rel = p.relative_to(root).as_posix()
        files.append(SourceFile(rel, text, strip_comments_and_strings(text)))
    return files


def lint_tree(root: Path, only: Optional[Sequence[str]] = None
              ) -> List[Finding]:
    files = collect_files(root, only)
    findings: List[Finding] = []
    for f in files:
        for rule in FILE_RULES:
            findings.extend(rule(f))
    findings.extend(check_entry_points(root, {f.relpath: f for f in files},
                                       partial=only is not None))
    return sorted(findings)


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".", help="repository root to lint")
    ap.add_argument("files", nargs="*",
                    help="optional root-relative files (default: whole tree)")
    args = ap.parse_args(argv)
    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"flexcs-lint: no such directory: {root}", file=sys.stderr)
        return 2
    findings = lint_tree(root, args.files or None)
    for fd in findings:
        print(fd)
    if findings:
        print(f"flexcs-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("flexcs-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
