#!/usr/bin/env sh
# Gating clang-tidy runner for the flexcs library sources.
#
# Runs clang-tidy (override the binary with $CLANG_TIDY) over every .cpp in
# src/ using the repo .clang-tidy profile, then compares the diagnostics
# against the checked-in suppression baseline tools/clang_tidy_baseline.txt.
# Any diagnostic NOT in the baseline fails the run; baseline entries that no
# longer fire are reported as stale (but do not fail) so the baseline can be
# shrunk over time. The raw clang-tidy exit code is deliberately ignored —
# with WarningsAsErrors: '*' it is nonzero whenever baselined diagnostics
# fire; the baseline comparison is the gate.
#
# Registered as the `lint.tidy` ctest when a clang-tidy binary is found at
# configure time. Unlike its pre-gating ancestor this script does NOT degrade
# gracefully: a missing binary is an error (exit 2), so a misconfigured CI
# lane cannot pass vacuously.
#
# Usage: tools/run_clang_tidy.sh [build-dir] [file...]
#   build-dir  directory containing compile_commands.json
#              (default: first of build-relwithdebinfo, build-werror,
#               build-asan, build)
#   file...    restrict to specific sources (default: all of src/)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy_bin" >/dev/null 2>&1; then
    echo "run_clang_tidy: '$tidy_bin' not found on PATH." >&2
    echo "run_clang_tidy: install clang-tools or set CLANG_TIDY=<binary>." >&2
    exit 2
fi

build_dir="${1:-}"
if [ -n "$build_dir" ]; then
    shift
else
    for d in build-relwithdebinfo build-werror build-asan build; do
        if [ -f "$d/compile_commands.json" ]; then
            build_dir=$d
            break
        fi
    done
fi

if [ -z "$build_dir" ] || [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "run_clang_tidy: no compile_commands.json found." >&2
    echo "run_clang_tidy: configure first, e.g.: cmake --preset relwithdebinfo" >&2
    exit 2
fi

if [ "$#" -gt 0 ]; then
    files="$*"
else
    files=$(find src -name '*.cpp' | sort)
fi

baseline="tools/clang_tidy_baseline.txt"
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
raw="$workdir/raw.log"
found="$workdir/found.txt"

echo "run_clang_tidy: $("$tidy_bin" --version | head -n 1 | sed 's/^ *//')"
echo "run_clang_tidy: using $build_dir/compile_commands.json"

: > "$raw"
for f in $files; do
    echo "== $f"
    # Exit code intentionally ignored; the baseline diff below is the gate.
    "$tidy_bin" -p "$build_dir" --quiet "$f" >> "$raw" 2>/dev/null || true
done

# Diagnostic lines look like:
#   /abs/path/src/cs/decoder.cpp:12:5: warning: message [check-name]
# Normalise to "relative/path [check-name]" — line numbers are left out so
# unrelated edits above a baselined finding do not churn the baseline.
sed -nE 's#^'"$repo_root"'/([^:]*):[0-9]+:[0-9]+: (warning|error): .* (\[[^][]*\])$#\1 \3#p' \
    "$raw" | sort -u > "$found"

# Baseline: one "path [check]" key per line; blank lines and # comments
# are ignored.
grep -v -e '^[[:space:]]*#' -e '^[[:space:]]*$' "$baseline" 2>/dev/null \
    | sort -u > "$workdir/baseline.txt" || : > "$workdir/baseline.txt"

new=$(comm -23 "$found" "$workdir/baseline.txt")
stale=$(comm -13 "$found" "$workdir/baseline.txt")

if [ -n "$stale" ]; then
    echo "run_clang_tidy: stale baseline entries (no longer fire; consider"
    echo "run_clang_tidy: removing them from $baseline):"
    printf '%s\n' "$stale" | sed 's/^/  /'
fi

if [ -n "$new" ]; then
    echo "run_clang_tidy: FAIL — diagnostics not in $baseline:" >&2
    printf '%s\n' "$new" >&2
    echo "run_clang_tidy: full clang-tidy output follows:" >&2
    grep -F "warning:" "$raw" >&2 || true
    grep -F "error:" "$raw" >&2 || true
    exit 1
fi

echo "run_clang_tidy: OK ($(wc -l < "$found" | tr -d ' ') baselined, 0 new)"
