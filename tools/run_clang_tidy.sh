#!/usr/bin/env sh
# Runs clang-tidy over the flexcs library sources using the repo .clang-tidy
# profile. Degrades gracefully: exits 0 with a notice when clang-tidy is not
# installed, so CI lanes and dev boxes without LLVM stay green.
#
# Usage: tools/run_clang_tidy.sh [build-dir] [file...]
#   build-dir  directory containing compile_commands.json
#              (default: first of build-relwithdebinfo, build-werror, build)
#   file...    restrict to specific sources (default: all of src/)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_clang_tidy: clang-tidy not found on PATH; skipping (not an error)."
    echo "run_clang_tidy: install LLVM/clang-tools to enable this check."
    exit 0
fi

build_dir="${1:-}"
if [ -n "$build_dir" ]; then
    shift
else
    for d in build-relwithdebinfo build-werror build-asan build; do
        if [ -f "$d/compile_commands.json" ]; then
            build_dir=$d
            break
        fi
    done
fi

if [ -z "$build_dir" ] || [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "run_clang_tidy: no compile_commands.json found." >&2
    echo "run_clang_tidy: configure first, e.g.: cmake --preset relwithdebinfo" >&2
    exit 2
fi

if [ "$#" -gt 0 ]; then
    files="$*"
else
    files=$(find src -name '*.cpp' | sort)
fi

echo "run_clang_tidy: $(clang-tidy --version | head -n 1 | sed 's/^ *//')"
echo "run_clang_tidy: using $build_dir/compile_commands.json"

status=0
for f in $files; do
    echo "== $f"
    clang-tidy -p "$build_dir" --quiet "$f" || status=1
done

exit $status
